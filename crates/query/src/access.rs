//! Pushed-down JSON access expressions (paper §4.2, §4.3, §4.5).
//!
//! An [`Access`] is a placeholder handed to the table scan: a key path plus
//! the SQL type the query casts to. Per tile, [`resolve_access`] decides
//! once whether an extracted column serves it (and whether null entries
//! require the binary fallback of §3.4) — "since it is expensive to
//! calculate the availability of materialized columns per tuple, the
//! calculation is performed once per tile".

use crate::scalar::Scalar;
use jt_core::{AccessType, KeyPath, StorageMode, Tile};
use jt_json::Value;
use jt_jsonb::{JsonbKind, JsonbRef};

/// One pushed-down access: `data ->> path :: ty`, named for reference from
/// expressions higher in the plan.
#[derive(Debug, Clone)]
pub struct Access {
    /// Slot name used by expressions (e.g. `"l_quantity"`).
    pub name: String,
    /// The key path into the JSON column.
    pub path: KeyPath,
    /// Requested SQL type (cast rewriting, §4.3).
    pub ty: AccessType,
}

impl Access {
    /// Build an access; `path` uses dotted notation (`"user.id"`).
    pub fn new(name: &str, path: &str, ty: AccessType) -> Access {
        Access {
            name: name.to_owned(),
            path: parse_dotted_path(path),
            ty,
        }
    }
}

/// Parse `"a.b.c"` / `"tags[0].text"` into a [`KeyPath`].
pub fn parse_dotted_path(s: &str) -> KeyPath {
    let mut path = KeyPath::root();
    for part in s.split('.') {
        let mut rest = part;
        // Leading key (may be empty when the part is pure index like "[0]").
        if let Some(bracket) = rest.find('[') {
            if bracket > 0 {
                path = path.child(&rest[..bracket]);
            }
            rest = &rest[bracket..];
            while let Some(stripped) = rest.strip_prefix('[') {
                let end = stripped.find(']').expect("unclosed [ in path");
                path = path.index(stripped[..end].parse().expect("numeric index"));
                rest = &stripped[end + 1..];
            }
        } else {
            path = path.child(rest);
        }
    }
    path
}

/// The per-tile resolution of one access (§4.5), cached for all rows.
#[derive(Debug, Clone, Copy)]
pub enum ResolvedAccess {
    /// Served by extracted column `col`; `fallback` tells whether null
    /// entries must consult the binary document (nullable or other-typed
    /// columns, §4.4).
    Column {
        /// Index into the tile's column chunks.
        col: usize,
        /// Whether a null column entry requires the binary fallback.
        fallback: bool,
    },
    /// Served by binary JSONB lookups.
    Binary,
    /// Served by parsing the raw JSON text (the `JSON` baseline).
    Text,
}

/// Resolve an access against one tile.
pub fn resolve_access(tile: &Tile, access: &Access, mode: StorageMode) -> ResolvedAccess {
    match mode {
        StorageMode::JsonText => ResolvedAccess::Text,
        StorageMode::Jsonb => ResolvedAccess::Binary,
        StorageMode::Sinew | StorageMode::Tiles => {
            match tile.find_column(&access.path, access.ty) {
                Some(col) => {
                    let meta = &tile.header.columns[col];
                    ResolvedAccess::Column {
                        col,
                        fallback: meta.nullable || meta.other_typed,
                    }
                }
                None => ResolvedAccess::Binary,
            }
        }
    }
}

/// Evaluate a resolved access for row `row` of `tile`.
pub fn eval_access(tile: &Tile, plan: ResolvedAccess, access: &Access, row: usize) -> Scalar {
    match plan {
        ResolvedAccess::Column { col, fallback } => {
            let chunk = tile.column(col);
            if chunk.is_null(row) {
                // §3.4: null in the extract means absent *or* differently
                // typed — the binary document is the source of truth.
                if fallback {
                    return eval_binary(tile, access, row);
                }
                return Scalar::Null;
            }
            match access.ty {
                AccessType::Int => chunk.get_i64(row).map_or(Scalar::Null, Scalar::Int),
                AccessType::Float | AccessType::Numeric => {
                    chunk.get_f64(row).map_or(Scalar::Null, Scalar::Float)
                }
                AccessType::Bool => chunk.get_bool(row).map_or(Scalar::Null, Scalar::Bool),
                AccessType::Text => match chunk.get_text(row) {
                    Some(t) => Scalar::str(&t),
                    // Date columns cannot reproduce their text (§4.9).
                    None => eval_binary(tile, access, row),
                },
                AccessType::Timestamp => match chunk.get_date(row) {
                    Some(ts) => Scalar::Timestamp(ts),
                    // A string column serving a timestamp cast: parse.
                    None => chunk
                        .get_str(row)
                        .and_then(jt_core::parse_timestamp)
                        .map_or(Scalar::Null, Scalar::Timestamp),
                },
                AccessType::Json => eval_binary(tile, access, row),
            }
        }
        ResolvedAccess::Binary => eval_binary(tile, access, row),
        ResolvedAccess::Text => {
            let text = tile.doc_text(row).expect("text mode stores text");
            // The paper's JSON baseline: every access pays a full parse.
            let doc = jt_json::parse(text).expect("stored text is valid JSON");
            match access.path.resolve(&doc) {
                Some(v) => cast_value(v, access.ty),
                None => Scalar::Null,
            }
        }
    }
}

/// Evaluate a resolved access for every row in `sel` (ascending row ids of
/// `tile`), in order — the late-materialization gather of the vectorized
/// scan. Column-served accesses go through [`jt_core::ColumnChunk::gather`]
/// so the typed copy runs column-at-a-time; conversions and fallbacks then
/// mirror [`eval_access`] exactly.
pub fn gather_access(
    tile: &Tile,
    plan: ResolvedAccess,
    access: &Access,
    sel: &[u32],
) -> Vec<Scalar> {
    let ResolvedAccess::Column { col, fallback } = plan else {
        // Binary and text modes are inherently row-at-a-time.
        return sel
            .iter()
            .map(|&r| eval_access(tile, plan, access, r as usize))
            .collect();
    };
    let g = tile.column(col).gather(sel);
    let mut out = Vec::with_capacity(sel.len());
    for (i, &r) in sel.iter().enumerate() {
        if g.is_null(i) {
            // §3.4: null in the extract means absent *or* differently typed.
            out.push(if fallback {
                eval_binary(tile, access, r as usize)
            } else {
                Scalar::Null
            });
            continue;
        }
        out.push(match access.ty {
            AccessType::Int => g.get_i64(i).map_or(Scalar::Null, Scalar::Int),
            AccessType::Float | AccessType::Numeric => {
                g.get_f64(i).map_or(Scalar::Null, Scalar::Float)
            }
            AccessType::Bool => g.get_bool(i).map_or(Scalar::Null, Scalar::Bool),
            AccessType::Text => match g.get_text(i) {
                Some(t) => Scalar::str(&t),
                // Date columns cannot reproduce their text (§4.9).
                None => eval_binary(tile, access, r as usize),
            },
            AccessType::Timestamp => match g.get_date(i) {
                Some(ts) => Scalar::Timestamp(ts),
                None => g
                    .get_str(i)
                    .and_then(jt_core::parse_timestamp)
                    .map_or(Scalar::Null, Scalar::Timestamp),
            },
            AccessType::Json => eval_binary(tile, access, r as usize),
        });
    }
    out
}

fn eval_binary(tile: &Tile, access: &Access, row: usize) -> Scalar {
    let Some(doc) = tile.doc_jsonb(row) else {
        return Scalar::Null;
    };
    match access.path.resolve_jsonb(doc) {
        Some(v) => cast_jsonb(v, access.ty),
        None => Scalar::Null,
    }
}

/// Cast a binary JSON value to the requested SQL type (§4.3 / §5.4).
/// Failed casts yield SQL null (PostgreSQL would raise; returning null
/// keeps the engine total without changing any benchmark query's result).
pub fn cast_jsonb(v: JsonbRef<'_>, ty: AccessType) -> Scalar {
    match ty {
        AccessType::Int => match v.kind() {
            JsonbKind::Int => Scalar::Int(v.as_i64().expect("int")),
            JsonbKind::Float => Scalar::Int(v.as_f64().expect("float") as i64),
            JsonbKind::NumStr => v
                .as_numeric_string()
                .and_then(|n| n.to_i64())
                .map_or(Scalar::Null, Scalar::Int),
            JsonbKind::String => v
                .as_str()
                .and_then(|s| s.parse().ok())
                .map_or(Scalar::Null, Scalar::Int),
            _ => Scalar::Null,
        },
        AccessType::Float | AccessType::Numeric => match v.kind() {
            JsonbKind::Int | JsonbKind::Float | JsonbKind::NumStr => {
                v.as_number().map_or(Scalar::Null, Scalar::Float)
            }
            JsonbKind::String => v
                .as_str()
                .and_then(|s| s.parse().ok())
                .map_or(Scalar::Null, Scalar::Float),
            _ => Scalar::Null,
        },
        AccessType::Bool => match v.kind() {
            JsonbKind::Bool => Scalar::Bool(v.as_bool().expect("bool")),
            JsonbKind::String => match v.as_str() {
                Some("true") => Scalar::Bool(true),
                Some("false") => Scalar::Bool(false),
                _ => Scalar::Null,
            },
            _ => Scalar::Null,
        },
        AccessType::Text | AccessType::Json => match v.kind() {
            JsonbKind::Null => Scalar::Null,
            JsonbKind::String => Scalar::str(v.as_str().expect("str")),
            JsonbKind::NumStr => Scalar::str(v.as_text().expect("numstr")),
            // ->> of numbers/bools/containers returns their JSON text.
            _ => Scalar::str(v.to_json_text()),
        },
        AccessType::Timestamp => match v.kind() {
            JsonbKind::String => v
                .as_str()
                .and_then(jt_core::parse_timestamp)
                .map_or(Scalar::Null, Scalar::Timestamp),
            JsonbKind::Int => Scalar::Timestamp(v.as_i64().expect("int")),
            _ => Scalar::Null,
        },
    }
}

/// Cast a tree value (JSON-text mode) to the requested SQL type.
pub fn cast_value(v: &Value, ty: AccessType) -> Scalar {
    match ty {
        AccessType::Int => match v {
            Value::Num(n) => Scalar::Int(n.as_i64().unwrap_or(n.as_f64() as i64)),
            Value::Str(s) => match jt_jsonb::detect_numeric_string(s).and_then(|n| n.to_i64()) {
                Some(i) => Scalar::Int(i),
                None => s.parse().map_or(Scalar::Null, Scalar::Int),
            },
            _ => Scalar::Null,
        },
        AccessType::Float | AccessType::Numeric => match v {
            Value::Num(n) => Scalar::Float(n.as_f64()),
            Value::Str(s) => s.parse().map_or(Scalar::Null, Scalar::Float),
            _ => Scalar::Null,
        },
        AccessType::Bool => match v {
            Value::Bool(b) => Scalar::Bool(*b),
            Value::Str(s) if s == "true" => Scalar::Bool(true),
            Value::Str(s) if s == "false" => Scalar::Bool(false),
            _ => Scalar::Null,
        },
        AccessType::Text | AccessType::Json => match v {
            Value::Null => Scalar::Null,
            Value::Str(s) => Scalar::str(s),
            other => Scalar::str(jt_json::to_string(other)),
        },
        AccessType::Timestamp => match v {
            Value::Str(s) => jt_core::parse_timestamp(s).map_or(Scalar::Null, Scalar::Timestamp),
            Value::Num(n) => n.as_i64().map_or(Scalar::Null, Scalar::Timestamp),
            _ => Scalar::Null,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jt_core::{Relation, TilesConfig};

    fn docs() -> Vec<Value> {
        (0..100)
            .map(|i| {
                jt_json::parse(&format!(
                    r#"{{"id":{i},"price":"{}.99","date":"2020-01-{:02}","user":{{"name":"u{i}"}},"rare{}":1}}"#,
                    i, 1 + i % 28, i % 50
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn path_parsing() {
        assert_eq!(parse_dotted_path("a"), KeyPath::keys(&["a"]));
        assert_eq!(parse_dotted_path("a.b.c"), KeyPath::keys(&["a", "b", "c"]));
        assert_eq!(
            parse_dotted_path("tags[2].text"),
            KeyPath::keys(&["tags"]).index(2).child("text")
        );
        assert_eq!(
            parse_dotted_path("a[0][1]"),
            KeyPath::keys(&["a"]).index(0).index(1)
        );
    }

    #[test]
    fn column_fast_path_and_binary_fallback() {
        let rel = Relation::load(&docs(), TilesConfig::default());
        let tile = &rel.tiles()[0];
        // id: extracted int column.
        let a = Access::new("id", "id", AccessType::Int);
        let plan = resolve_access(tile, &a, StorageMode::Tiles);
        assert!(matches!(plan, ResolvedAccess::Column { .. }), "{plan:?}");
        assert_eq!(eval_access(tile, plan, &a, 5).as_i64(), Some(5));
        // rareN: not extracted → binary.
        let a = Access::new("r", "rare7", AccessType::Int);
        let plan = resolve_access(tile, &a, StorageMode::Tiles);
        assert!(matches!(plan, ResolvedAccess::Binary));
        assert_eq!(eval_access(tile, plan, &a, 7).as_i64(), Some(1));
        assert!(eval_access(tile, plan, &a, 8).is_null());
    }

    #[test]
    fn numeric_string_column_serves_decimal_and_text() {
        let rel = Relation::load(&docs(), TilesConfig::default());
        let tile = &rel.tiles()[0];
        let dec = Access::new("p", "price", AccessType::Numeric);
        let plan = resolve_access(tile, &dec, StorageMode::Tiles);
        assert!(matches!(plan, ResolvedAccess::Column { .. }));
        assert_eq!(eval_access(tile, plan, &dec, 3).as_f64(), Some(3.99));
        let txt = Access::new("p", "price", AccessType::Text);
        let plan = resolve_access(tile, &txt, StorageMode::Tiles);
        assert_eq!(eval_access(tile, plan, &txt, 3).as_str(), Some("3.99"));
    }

    #[test]
    fn date_column_serves_timestamp_but_not_text() {
        let rel = Relation::load(&docs(), TilesConfig::default());
        let tile = &rel.tiles()[0];
        let ts = Access::new("d", "date", AccessType::Timestamp);
        let plan = resolve_access(tile, &ts, StorageMode::Tiles);
        assert!(matches!(plan, ResolvedAccess::Column { .. }));
        assert_eq!(
            eval_access(tile, plan, &ts, 0),
            Scalar::Timestamp(jt_core::parse_timestamp("2020-01-01").unwrap())
        );
        // Text access must return the original string via the binary doc.
        let txt = Access::new("d", "date", AccessType::Text);
        let plan = resolve_access(tile, &txt, StorageMode::Tiles);
        assert_eq!(
            eval_access(tile, plan, &txt, 0).as_str(),
            Some("2020-01-01")
        );
    }

    #[test]
    fn all_modes_agree() {
        let d = docs();
        let accesses = [
            Access::new("id", "id", AccessType::Int),
            Access::new("p", "price", AccessType::Float),
            Access::new("n", "user.name", AccessType::Text),
            Access::new("d", "date", AccessType::Timestamp),
            Access::new("missing", "nope.nothing", AccessType::Int),
        ];
        let rels: Vec<Relation> = [
            StorageMode::JsonText,
            StorageMode::Jsonb,
            StorageMode::Sinew,
            StorageMode::Tiles,
        ]
        .iter()
        .map(|&m| Relation::load(&d, TilesConfig::with_mode(m)))
        .collect();
        for a in &accesses {
            for row in [0usize, 42, 99] {
                let vals: Vec<Scalar> = rels
                    .iter()
                    .map(|rel| {
                        let (ti, r) = rel.locate(row);
                        let tile = &rel.tiles()[ti];
                        let plan = resolve_access(tile, a, rel.config().mode);
                        eval_access(tile, plan, a, r)
                    })
                    .collect();
                for v in &vals[1..] {
                    assert!(
                        vals[0].group_eq(v) || (vals[0].is_null() && v.is_null()),
                        "access {} row {row}: {vals:?}",
                        a.name
                    );
                }
            }
        }
    }

    #[test]
    fn text_of_containers_is_json() {
        let d = vec![jt_json::parse(r#"{"o":{"a":1},"l":[1,2]}"#).unwrap()];
        let rel = Relation::load(&d, TilesConfig::with_mode(StorageMode::Jsonb));
        let tile = &rel.tiles()[0];
        let a = Access::new("o", "o", AccessType::Text);
        let v = eval_access(tile, ResolvedAccess::Binary, &a, 0);
        assert_eq!(v.as_str(), Some(r#"{"a":1}"#));
        let a = Access::new("l", "l", AccessType::Text);
        let v = eval_access(tile, ResolvedAccess::Binary, &a, 0);
        assert_eq!(v.as_str(), Some("[1,2]"));
    }
}
