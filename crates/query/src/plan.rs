//! Query building, optimization, and execution (paper §4.2, §4.6).
//!
//! A [`Query`] is a builder for select-project-join-aggregate plans over
//! JSON relations. Execution proceeds in phases:
//!
//! 1. **Scans** — all pushed-down accesses and per-table filters run
//!    tile-parallel, with §4.8 skipping.
//! 2. **Join ordering** — with `optimize_joins` on, inner joins are ordered
//!    greedily by cardinality estimates derived from the relation
//!    statistics (§4.6): filter selectivities shrink base cardinalities,
//!    and join outputs are estimated with `|A|·|B| / max(nd(a), nd(b))`
//!    using HyperLogLog distinct counts. With it off, joins run in
//!    declaration order — the "bad plan" behaviour the paper attributes to
//!    statistics-blind systems.
//! 3. **Semi/anti joins, post-filters, aggregation, having, order/limit.**

use crate::access::Access;
use crate::agg::{group_aggregate_par_cancellable, Agg};
use crate::cancel::{CancelToken, ExecError};
use crate::expr::Expr;
use crate::join::{
    anti_join_par_cancellable, hash_join_par_bounded_cancellable, semi_join_par_cancellable,
};
use crate::par::{run_workers_guarded, worker_ranges, PAR_MIN_ROWS};
use crate::profile::{ExecProfile, JoinProfile, ScanProfile, StageProfile};
use crate::scalar::Scalar;
use crate::scan::{execute_scan_cancellable, ScanSpec, ScanStats};
use crate::sort::sort_chunk_cancellable;
use crate::Chunk;
use jt_core::{AccessType, Relation};
use std::collections::HashMap;
use std::time::Instant;

/// Execution knobs (the Figure 8 / Figure 14 experiment switches) plus the
/// query lifecycle controls the `jt serve` layer drives.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for the whole pipeline: scans, joins, aggregation,
    /// and the post-join stages. Defaults to the machine's available
    /// parallelism (clamped to 16); results are bit-identical at every
    /// thread count, but tests that pin down exact timings or
    /// interleavings should set `threads: 1` explicitly.
    pub threads: usize,
    /// §4.8 tile skipping.
    pub enable_skipping: bool,
    /// §4.6 statistics-driven join ordering.
    ///
    /// Back-compat shim: callers that plan through the logical layer should
    /// use [`crate::PlannerOptions`] instead — this flag maps to the
    /// `join-reorder` pass via [`crate::PlannerOptions::compat`] and only
    /// controls the runtime greedy pick for directly-built [`Query`]s.
    pub optimize_joins: bool,
    /// Cooperative cancellation/deadline token, polled at every morsel
    /// boundary. The default inert token never cancels and costs one
    /// `Option` test per poll; [`Query::run_with`] panics if a live token
    /// trips mid-query, so cancellable callers must use
    /// [`Query::try_run_with`].
    pub cancel: CancelToken,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(16)),
            enable_skipping: true,
            optimize_joins: true,
            cancel: CancelToken::none(),
        }
    }
}

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    Inner,
    Semi,
    Anti,
}

#[derive(Debug, Clone)]
struct JoinClause {
    left: String,
    right: String,
    kind: JoinKind,
}

#[derive(Clone)]
struct TableScanDef<'a> {
    name: String,
    rel: &'a Relation,
    accesses: Vec<Access>,
    filter: Option<Expr>,
    /// Planner-provided scan row bound (see [`crate::scan::ScanSpec::limit_hint`]).
    bound: Option<usize>,
}

/// Result rows plus execution counters.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    /// Column-major results.
    pub chunk: Chunk,
    /// Scan counters summed over all tables.
    pub scan_stats: ScanStats,
    /// The per-operator `EXPLAIN ANALYZE` record of this execution.
    pub profile: ExecProfile,
}

impl ResultSet {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.chunk.rows()
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &[Scalar] {
        &self.chunk.columns[i]
    }

    /// Render as text lines (debugging / repro output).
    pub fn to_lines(&self) -> Vec<String> {
        (0..self.rows())
            .map(|r| {
                (0..self.chunk.width())
                    .map(|c| self.chunk.get(r, c).display())
                    .collect::<Vec<_>>()
                    .join(" | ")
            })
            .collect()
    }
}

/// Query builder; see the crate docs for an example. `Clone` lets a
/// planned query be executed repeatedly (benchmark harnesses, prepared
/// statements); execution consumes the plan.
#[derive(Clone)]
pub struct Query<'a> {
    tables: Vec<TableScanDef<'a>>,
    joins: Vec<JoinClause>,
    post_filter: Option<Expr>,
    group_by: Vec<Expr>,
    aggs: Vec<Agg>,
    having: Option<Expr>,
    select: Option<Vec<Expr>>,
    order_by: Vec<(usize, bool)>,
    limit: Option<usize>,
    offset: Option<usize>,
    /// Output row bound for the last-executed inner join's probe side
    /// (planner bound propagation; prefix-identical semantics).
    probe_bound: Option<usize>,
    /// Keep only the first `visible` output columns at the very end (the
    /// rest are hidden sort keys).
    visible: Option<usize>,
    /// Planner override for the sort's top-K bound. `None` = derive from
    /// `limit`/`offset` (builder back-compat); `Some(b)` = use `b` as-is
    /// (`Some(None)` forces a full sort).
    sort_bound_override: Option<Option<usize>>,
}

impl<'a> Query<'a> {
    /// Start a query scanning `rel`. The name labels the table in
    /// [`Query::explain`] output; plans are keyed by access names, which
    /// must be globally unique.
    pub fn scan(name: &str, rel: &'a Relation) -> Query<'a> {
        Query {
            tables: vec![TableScanDef {
                name: name.to_owned(),
                rel,
                accesses: Vec::new(),
                filter: None,
                bound: None,
            }],
            joins: Vec::new(),
            post_filter: None,
            group_by: Vec::new(),
            aggs: Vec::new(),
            having: None,
            select: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
            probe_bound: None,
            visible: None,
            sort_bound_override: None,
        }
    }

    /// Push down an access on the current table; the slot name equals the
    /// dotted path.
    pub fn access(self, path: &str, ty: AccessType) -> Query<'a> {
        self.access_as(path, path, ty)
    }

    /// Push down an access with an explicit slot name.
    pub fn access_as(mut self, name: &str, path: &str, ty: AccessType) -> Query<'a> {
        let t = self.tables.last_mut().expect("scan first");
        t.accesses.push(Access::new(name, path, ty));
        self
    }

    /// Push down an access with a pre-built key path (used by front ends
    /// like `jt-sql` whose paths may contain dots or empty keys that the
    /// dotted notation cannot express).
    pub fn access_path(mut self, name: &str, path: jt_core::KeyPath, ty: AccessType) -> Query<'a> {
        let t = self.tables.last_mut().expect("scan first");
        t.accesses.push(Access {
            name: name.to_owned(),
            path,
            ty,
        });
        self
    }

    /// Push a filter down to the current table's scan (may reference only
    /// this table's access names).
    pub fn filter(mut self, expr: Expr) -> Query<'a> {
        let t = self.tables.last_mut().expect("scan first");
        t.filter = Some(match t.filter.take() {
            Some(f) => f.and(expr),
            None => expr,
        });
        self
    }

    /// Add another table; subsequent `access`/`filter` calls target it.
    pub fn join(mut self, name: &str, rel: &'a Relation) -> Query<'a> {
        self.tables.push(TableScanDef {
            name: name.to_owned(),
            rel,
            accesses: Vec::new(),
            filter: None,
            bound: None,
        });
        self
    }

    /// Inner equi-join condition between two access names.
    pub fn on(mut self, left: &str, right: &str) -> Query<'a> {
        self.joins.push(JoinClause {
            left: left.to_owned(),
            right: right.to_owned(),
            kind: JoinKind::Inner,
        });
        self
    }

    /// Semi-join (`EXISTS`): keep left rows with a match in the *current*
    /// (most recently joined) table.
    pub fn semi_on(mut self, left: &str, right: &str) -> Query<'a> {
        self.joins.push(JoinClause {
            left: left.to_owned(),
            right: right.to_owned(),
            kind: JoinKind::Semi,
        });
        self
    }

    /// Anti-join (`NOT EXISTS`).
    pub fn anti_on(mut self, left: &str, right: &str) -> Query<'a> {
        self.joins.push(JoinClause {
            left: left.to_owned(),
            right: right.to_owned(),
            kind: JoinKind::Anti,
        });
        self
    }

    /// Filter evaluated after all joins (cross-table predicates).
    pub fn filter_joined(mut self, expr: Expr) -> Query<'a> {
        self.post_filter = Some(match self.post_filter.take() {
            Some(f) => f.and(expr),
            None => expr,
        });
        self
    }

    /// Group by `keys` (referencing access names) computing `aggs`.
    /// Output columns: keys first, then aggregates.
    pub fn aggregate(mut self, keys: Vec<Expr>, aggs: Vec<Agg>) -> Query<'a> {
        self.group_by = keys;
        self.aggs = aggs;
        self
    }

    /// Filter on aggregate output slots (`Expr::Slot` indices into the
    /// aggregate output).
    pub fn having(mut self, expr: Expr) -> Query<'a> {
        self.having = Some(expr);
        self
    }

    /// Post-aggregation projection over output slots.
    pub fn select(mut self, exprs: Vec<Expr>) -> Query<'a> {
        self.select = Some(exprs);
        self
    }

    /// Sort the final output by column index.
    pub fn order_by(mut self, col: usize, desc: bool) -> Query<'a> {
        self.order_by.push((col, desc));
        self
    }

    /// Keep only the first `n` rows.
    pub fn limit(mut self, n: usize) -> Query<'a> {
        self.limit = Some(n);
        self
    }

    /// Skip the first `n` rows of the final output (SQL `OFFSET`). Applied
    /// after the sort and before [`Query::limit`]; with both set, the sort
    /// pushes `limit + offset` down as its top-K bound so the early-exit
    /// paths still apply.
    pub fn offset(mut self, n: usize) -> Query<'a> {
        self.offset = Some(n);
        self
    }

    /// Bound the most recently declared table's scan to roughly the first
    /// `n` passing rows (planner bound propagation). The scan may emit more
    /// than `n` rows — callers truncate — but the first `n` are identical
    /// to the unbounded scan at every thread count.
    pub fn scan_bound(mut self, n: usize) -> Query<'a> {
        self.tables
            .last_mut()
            .expect("scan_bound requires a table")
            .bound = Some(n);
        self
    }

    /// Bound the last-executed inner join to roughly the first `n` output
    /// rows (planner bound propagation; same prefix semantics as
    /// [`Query::scan_bound`]).
    pub fn probe_bound(mut self, n: usize) -> Query<'a> {
        self.probe_bound = Some(n);
        self
    }

    /// Keep only the first `n` output columns at the very end of execution;
    /// later columns are hidden sort keys (`ORDER BY <expr>` support).
    pub fn visible(mut self, n: usize) -> Query<'a> {
        self.visible = Some(n);
        self
    }

    /// Planner override for the sort's top-K bound. Without this call the
    /// bound is derived from `limit`/`offset` (builder back-compat).
    pub fn with_sort_bound(mut self, bound: Option<usize>) -> Query<'a> {
        self.sort_bound_override = Some(bound);
        self
    }

    /// Describe the plan without executing it: per-table cardinality
    /// estimates (statistics + the §4.6 static document sampling), the
    /// join order the optimizer would choose, pushed filters, and the §4.8
    /// skip-path sets. An `EXPLAIN` for JSON tiles plans.
    pub fn explain(&self) -> PlanExplain {
        let mut tables = Vec::new();
        for t in &self.tables {
            let mut filter = t.filter.clone();
            if let Some(f) = &mut filter {
                f.resolve(&|name| {
                    t.accesses
                        .iter()
                        .position(|a| a.name == name)
                        .expect("pushed filter references own accesses")
                });
            }
            let probe = TableScanDef {
                name: t.name.clone(),
                rel: t.rel,
                accesses: t.accesses.clone(),
                filter,
                bound: t.bound,
            };
            let estimated = sample_scan_rows(&probe, 256);
            let skip_paths: Vec<String> = probe
                .filter
                .as_ref()
                .map(|f| {
                    // HashSet order is run-dependent; render in access
                    // declaration order so EXPLAIN output is stable.
                    let mut slots: Vec<usize> = f.null_rejecting_slots().into_iter().collect();
                    slots.sort_unstable();
                    slots
                        .into_iter()
                        .map(|s| t.accesses[s].path.to_string())
                        .collect()
                })
                .unwrap_or_default();
            tables.push(TableExplain {
                name: t.name.clone(),
                total_rows: t.rel.row_count(),
                estimated_rows: estimated,
                accesses: t.accesses.len(),
                has_pushed_filter: t.filter.is_some(),
                skip_paths,
            });
        }
        // Simulate the greedy join ordering on the estimates.
        let name_table = |name: &str| -> usize {
            self.tables
                .iter()
                .position(|t| t.accesses.iter().any(|a| a.name == name))
                .expect("known access")
        };
        let inner: Vec<&JoinClause> = self
            .joins
            .iter()
            .filter(|j| j.kind == JoinKind::Inner)
            .collect();
        let mut comp_of: Vec<usize> = (0..self.tables.len()).collect();
        let mut comp_est: Vec<f64> = tables.iter().map(|t| t.estimated_rows).collect();
        let mut pending: Vec<usize> = (0..inner.len()).collect();
        let mut join_order = Vec::new();
        while !pending.is_empty() {
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (pos, &ji) in pending.iter().enumerate() {
                let j = inner[ji];
                let (lt, rt) = (name_table(&j.left), name_table(&j.right));
                let (lc, rc) = (comp_of[lt], comp_of[rt]);
                let cost = if lc == rc {
                    0.0
                } else {
                    let ls = self.tables[lt]
                        .accesses
                        .iter()
                        .position(|a| a.name == j.left)
                        .expect("left access");
                    let rs = self.tables[rt]
                        .accesses
                        .iter()
                        .position(|a| a.name == j.right)
                        .expect("right access");
                    comp_est[lc] * comp_est[rc]
                        / join_key_distinct(&self.tables, lt, ls, rt, rs).max(1.0)
                };
                if cost < best_cost {
                    best_cost = cost;
                    best = pos;
                }
            }
            let ji = pending.remove(best);
            let j = inner[ji];
            let (lt, rt) = (name_table(&j.left), name_table(&j.right));
            let (lc, rc) = (comp_of[lt], comp_of[rt]);
            join_order.push(JoinExplain {
                left: j.left.clone(),
                right: j.right.clone(),
                estimated_output: best_cost,
            });
            if lc != rc {
                comp_est[lc] = best_cost;
                for c in comp_of.iter_mut() {
                    if *c == rc {
                        *c = lc;
                    }
                }
            }
        }
        PlanExplain {
            tables,
            join_order,
            has_post_filter: self.post_filter.is_some(),
            group_keys: self.group_by.len(),
            aggregates: self.aggs.len(),
            order_by: self.order_by.len(),
            top_k: if self.order_by.is_empty() {
                None
            } else {
                self.sort_bound()
            },
            limit: self.limit,
            offset: self.offset,
        }
    }

    /// The row bound pushed into the sort: `limit + offset` rows must
    /// survive the sort for the post-offset truncation to be correct. A
    /// planner override ([`Query::with_sort_bound`]) takes precedence.
    fn sort_bound(&self) -> Option<usize> {
        match self.sort_bound_override {
            Some(bound) => bound,
            None => self
                .limit
                .map(|n| n.saturating_add(self.offset.unwrap_or(0))),
        }
    }

    /// Run with default options (single-threaded, optimizations on).
    pub fn run(self) -> ResultSet {
        self.run_with(ExecOptions::default())
    }

    /// Run with explicit options. Panics if a live [`CancelToken`] in the
    /// options trips mid-query — infallible with the default inert token;
    /// cancellable callers use [`Query::try_run_with`].
    pub fn run_with(self, opts: ExecOptions) -> ResultSet {
        match self.try_run_with(opts) {
            Ok(r) => r,
            Err(e) => panic!("query aborted with no caller handling it: {e}"),
        }
    }

    /// Run with explicit options, surfacing cancellation/deadline aborts.
    /// The cancel token in `opts` is polled at every morsel boundary inside
    /// the operators and checked here between pipeline stages; once it
    /// trips, the partially-computed (structurally valid, semantically
    /// void) stage output is discarded and the abort cause is returned.
    pub fn try_run_with(self, opts: ExecOptions) -> Result<ResultSet, ExecError> {
        let t_query = Instant::now();
        let mut profile = ExecProfile::default();
        // --- name → (table, slot) mapping -------------------------------
        let mut slot_of: HashMap<String, (usize, usize)> = HashMap::new();
        for (ti, t) in self.tables.iter().enumerate() {
            for (si, a) in t.accesses.iter().enumerate() {
                let prev = slot_of.insert(a.name.clone(), (ti, si));
                assert!(prev.is_none(), "duplicate access name {:?}", a.name);
            }
        }
        let lookup_table = |name: &str| -> (usize, usize) {
            *slot_of
                .get(name)
                .unwrap_or_else(|| panic!("unknown column {name:?}"))
        };

        // --- scans (with §4.8 skip-path analysis) -----------------------
        let mut scanned: Vec<Chunk> = Vec::with_capacity(self.tables.len());
        let mut stats = ScanStats::default();
        for (ti, t) in self.tables.iter().enumerate() {
            let mut filter = t.filter.clone();
            if let Some(f) = &mut filter {
                f.resolve(&|name| {
                    let (ft, fs) = lookup_table(name);
                    assert_eq!(ft, ti, "pushed filter references other table: {name}");
                    fs
                });
            }
            let mut skip_paths: Vec<jt_core::KeyPath> = Vec::new();
            if let Some(f) = &filter {
                for slot in f.null_rejecting_slots() {
                    skip_paths.push(t.accesses[slot].path.clone());
                }
            }
            // Inner/semi join keys are null-rejecting on both sides; anti
            // joins only on the right (build) side.
            for j in &self.joins {
                for (name, rejecting) in [(&j.left, j.kind != JoinKind::Anti), (&j.right, true)] {
                    let (jt, js) = lookup_table(name);
                    if jt == ti && rejecting {
                        skip_paths.push(t.accesses[js].path.clone());
                    }
                }
            }
            let spec = ScanSpec {
                relation: t.rel,
                accesses: t.accesses.clone(),
                filter,
                skip_paths,
                enable_skipping: opts.enable_skipping,
                limit_hint: t.bound,
            };
            let t_scan = Instant::now();
            opts.cancel.check()?;
            let (chunk, s) = execute_scan_cancellable(&spec, opts.threads, &opts.cancel);
            opts.cancel.check()?;
            profile.scans.push(ScanProfile {
                table: t.name.clone(),
                rows_total: t.rel.row_count(),
                estimated_rows: sample_scan_rows(t, 256),
                stats: s,
                wall: t_scan.elapsed(),
            });
            stats.merge(&s);
            scanned.push(chunk);
        }
        debug_assert_eq!(
            stats.scanned_tiles + stats.skipped_tiles,
            stats.total_tiles,
            "tile skip accounting must cover every tile of every table"
        );

        // --- join ordering and execution --------------------------------
        // Components: each table starts alone; inner joins merge them.
        // `slot_map` tracks where each (table, slot) currently lives.
        let mut components: Vec<Option<Chunk>> = scanned.into_iter().map(Some).collect();
        let mut comp_of: Vec<usize> = (0..self.tables.len()).collect();
        let mut slot_base: Vec<HashMap<usize, usize>> = (0..self.tables.len())
            .map(|ti| HashMap::from([(ti, 0usize)]))
            .collect();

        let inner_joins: Vec<&JoinClause> = self
            .joins
            .iter()
            .filter(|j| j.kind == JoinKind::Inner)
            .collect();
        let mut pending: Vec<usize> = (0..inner_joins.len()).collect();
        let cancel = &opts.cancel;

        let estimates: Vec<f64> = self
            .tables
            .iter()
            .enumerate()
            .map(|(ti, t)| estimate_scan_rows(t, components[comp_of[ti]].as_ref()))
            .collect();
        let mut comp_est: Vec<f64> = estimates.clone();

        while !pending.is_empty() {
            cancel.check()?;
            // Pick the next join: cheapest estimated output (optimizer on)
            // or declaration order (off).
            let pick = if opts.optimize_joins {
                let mut best = 0usize;
                let mut best_cost = f64::INFINITY;
                for (pos, &ji) in pending.iter().enumerate() {
                    let cost =
                        self.estimate_join(&inner_joins, ji, &comp_of, &comp_est, &lookup_table);
                    if cost < best_cost {
                        best_cost = cost;
                        best = pos;
                    }
                }
                best
            } else {
                0
            };
            let ji = pending.remove(pick);
            // Planner bound propagation: only the last-executed inner join
            // may stop early — earlier joins feed later probes in full.
            let bound = if pending.is_empty() {
                self.probe_bound
            } else {
                None
            };
            let j = inner_joins[ji];
            let est_out = self.estimate_join(&inner_joins, ji, &comp_of, &comp_est, &lookup_table);
            let (lt, ls) = lookup_table(&j.left);
            let (rt, rs) = lookup_table(&j.right);
            let (lc, rc) = (comp_of[lt], comp_of[rt]);
            if lc == rc {
                // Same component already: apply as post filter.
                let chunk = components[lc].take().expect("component present");
                let lslot = slot_base[lc][&lt] + ls;
                let rslot = slot_base[rc][&rt] + rs;
                let t_join = Instant::now();
                let probe_rows = chunk.rows();
                let threads = stage_threads(probe_rows, opts.threads);
                let filtered = filter_chunk_par(
                    chunk,
                    &Expr::Slot(lslot).eq(Expr::Slot(rslot)),
                    threads,
                    cancel,
                );
                profile.joins.push(JoinProfile {
                    left: j.left.clone(),
                    right: j.right.clone(),
                    kind: "filter",
                    build_rows: 0,
                    probe_rows,
                    rows_out: filtered.rows(),
                    wall: t_join.elapsed(),
                    threads,
                    ..JoinProfile::default()
                });
                components[lc] = Some(filtered);
                continue;
            }
            let left_chunk = components[lc].take().expect("left comp");
            let right_chunk = components[rc].take().expect("right comp");
            let lslot = slot_base[lc][&lt] + ls;
            let rslot = slot_base[rc][&rt] + rs;
            // Build on the smaller side.
            let t_join = Instant::now();
            let ((joined, jstats), left_first) = if left_chunk.rows() <= right_chunk.rows() {
                (
                    hash_join_par_bounded_cancellable(
                        &left_chunk,
                        &right_chunk,
                        &[lslot],
                        &[rslot],
                        opts.threads,
                        cancel,
                        bound,
                    ),
                    true,
                )
            } else {
                (
                    hash_join_par_bounded_cancellable(
                        &right_chunk,
                        &left_chunk,
                        &[rslot],
                        &[lslot],
                        opts.threads,
                        cancel,
                        bound,
                    ),
                    false,
                )
            };
            profile.joins.push(JoinProfile {
                left: j.left.clone(),
                right: j.right.clone(),
                kind: "inner",
                build_rows: left_chunk.rows().min(right_chunk.rows()),
                probe_rows: left_chunk.rows().max(right_chunk.rows()),
                rows_out: joined.rows(),
                estimated_out: est_out,
                wall: t_join.elapsed(),
                partitions: jstats.partitions,
                threads: jstats.threads,
                build_wall: jstats.build_wall,
                probe_wall: jstats.probe_wall,
            });
            // Merge slot maps: offsets shift by the left side's width.
            let (first, second, first_width) = if left_first {
                (lc, rc, left_chunk.width())
            } else {
                (rc, lc, right_chunk.width())
            };
            let second_map = slot_base[second].clone();
            let mut merged = slot_base[first].clone();
            for (t, base) in second_map {
                merged.insert(t, base + first_width);
            }
            components[lc] = Some(joined);
            slot_base[lc] = merged;
            comp_est[lc] = comp_est[lc] * comp_est[rc]
                / join_key_distinct(&self.tables, lt, ls, rt, rs).max(1.0);
            for c in comp_of.iter_mut() {
                if *c == rc {
                    *c = lc;
                }
            }
        }

        // Collapse to a single component (cross product if disconnected).
        // Tables that only feed semi/anti joins stay out: they reduce the
        // main component later instead of multiplying into it.
        let reduction_tables: std::collections::HashSet<usize> = self
            .joins
            .iter()
            .filter(|j| j.kind != JoinKind::Inner)
            .map(|j| lookup_table(&j.right).0)
            .collect();
        let root = comp_of[0];
        for ti in 1..self.tables.len() {
            if reduction_tables.contains(&ti) {
                continue;
            }
            let c = comp_of[ti];
            if c != root && components[c].is_some() {
                let right = components[c].take().expect("comp");
                let left = components[root].take().expect("root");
                let lw = left.width();
                let t_join = Instant::now();
                let (build_rows, probe_rows) = (right.rows(), left.rows());
                let joined = cross_product(left, right);
                profile.joins.push(JoinProfile {
                    left: String::new(),
                    right: self.tables[ti].name.clone(),
                    kind: "cross",
                    build_rows,
                    probe_rows,
                    rows_out: joined.rows(),
                    wall: t_join.elapsed(),
                    ..JoinProfile::default()
                });
                let add: Vec<(usize, usize)> =
                    slot_base[c].iter().map(|(&t, &b)| (t, b + lw)).collect();
                for (t, b) in add {
                    slot_base[root].insert(t, b);
                }
                components[root] = Some(joined);
                for cc in comp_of.iter_mut() {
                    if *cc == c {
                        *cc = root;
                    }
                }
            }
        }
        let mut chunk = components[root].take().unwrap_or_default();

        // --- semi / anti joins ------------------------------------------
        for j in self.joins.iter().filter(|j| j.kind != JoinKind::Inner) {
            cancel.check()?;
            let (lt, ls) = lookup_table(&j.left);
            let (rt, rs) = lookup_table(&j.right);
            assert_eq!(comp_of[lt], root, "semi/anti left side must be joined");
            let lslot = slot_base[root][&lt] + ls;
            // Right side must be an unjoined base table.
            let right = match &components[comp_of[rt]] {
                Some(c) if comp_of[rt] != root => c.clone(),
                _ => panic!("semi/anti right table {rt} must not participate in inner joins"),
            };
            let t_join = Instant::now();
            let (kind, probe_rows, build_rows) = (
                match j.kind {
                    JoinKind::Semi => "semi",
                    JoinKind::Anti => "anti",
                    JoinKind::Inner => unreachable!(),
                },
                chunk.rows(),
                right.rows(),
            );
            let (reduced, jstats) = match j.kind {
                JoinKind::Semi => {
                    semi_join_par_cancellable(&chunk, &right, &[lslot], &[rs], opts.threads, cancel)
                }
                JoinKind::Anti => {
                    anti_join_par_cancellable(&chunk, &right, &[lslot], &[rs], opts.threads, cancel)
                }
                JoinKind::Inner => unreachable!(),
            };
            chunk = reduced;
            profile.joins.push(JoinProfile {
                left: j.left.clone(),
                right: j.right.clone(),
                kind,
                build_rows,
                probe_rows,
                rows_out: chunk.rows(),
                estimated_out: 0.0,
                wall: t_join.elapsed(),
                partitions: jstats.partitions,
                threads: jstats.threads,
                build_wall: jstats.build_wall,
                probe_wall: jstats.probe_wall,
            });
        }

        // --- post filter -------------------------------------------------
        if let Some(mut f) = self.post_filter {
            cancel.check()?;
            let t_stage = Instant::now();
            f.resolve(&|name| {
                let (t, s) = lookup_table(name);
                slot_base[root][&t] + s
            });
            let threads = stage_threads(chunk.rows(), opts.threads);
            chunk = filter_chunk_par(chunk, &f, threads, cancel);
            profile.stages.push(StageProfile {
                name: "post-filter",
                rows_out: chunk.rows(),
                wall: t_stage.elapsed(),
                threads,
                ..StageProfile::default()
            });
        }

        // --- aggregation --------------------------------------------------
        let global_lookup = |name: &str| {
            let (t, s) = lookup_table(name);
            slot_base[root][&t] + s
        };
        let mut out = if !self.aggs.is_empty() || !self.group_by.is_empty() {
            cancel.check()?;
            let t_stage = Instant::now();
            let mut keys = self.group_by;
            for k in &mut keys {
                k.resolve(&global_lookup);
            }
            let mut aggs = self.aggs;
            for a in &mut aggs {
                a.expr.resolve(&global_lookup);
            }
            let (grouped, astats) =
                group_aggregate_par_cancellable(&chunk, &keys, &aggs, opts.threads, cancel);
            profile.stages.push(StageProfile {
                name: "aggregate",
                rows_out: grouped.rows(),
                wall: t_stage.elapsed(),
                threads: astats.threads,
                partitions: astats.partitions,
                eval_wall: astats.eval_wall,
                accumulate_wall: astats.accumulate_wall,
                merge_wall: astats.merge_wall,
            });
            grouped
        } else {
            chunk
        };

        // --- having / select / order / limit -----------------------------
        if let Some(h) = self.having {
            cancel.check()?;
            let t_stage = Instant::now();
            let threads = stage_threads(out.rows(), opts.threads);
            out = filter_chunk_par(out, &h, threads, cancel);
            profile.stages.push(StageProfile {
                name: "having",
                rows_out: out.rows(),
                wall: t_stage.elapsed(),
                threads,
                ..StageProfile::default()
            });
        }
        if let Some(mut sel) = self.select {
            cancel.check()?;
            let t_stage = Instant::now();
            for e in &mut sel {
                // Bare selects after aggregation reference output slots; on
                // non-aggregated plans they may still use names.
                e.resolve(&global_lookup);
            }
            let threads = stage_threads(out.rows(), opts.threads);
            out = project_chunk_par(&out, &sel, threads, cancel);
            profile.stages.push(StageProfile {
                name: "select",
                rows_out: out.rows(),
                wall: t_stage.elapsed(),
                threads,
                ..StageProfile::default()
            });
        }
        // Inlined `sort_bound()`: `self` is partially moved by this point,
        // so the bound is recomputed from the (still-readable) fields.
        let sort_bound = match self.sort_bound_override {
            Some(bound) => bound,
            None => self
                .limit
                .map(|n| n.saturating_add(self.offset.unwrap_or(0))),
        };
        if !self.order_by.is_empty() {
            cancel.check()?;
            let t_order = Instant::now();
            // The LIMIT bound (plus any OFFSET — those rows are sliced off
            // below, so they must survive the sort) is propagated into the
            // sort: small bounds take the bounded-heap top-K path, larger
            // ones stop the merge early, and either way the result equals
            // full-sort-then-truncate (the sort order is strict and total).
            let (sorted, sstats) =
                sort_chunk_cancellable(&out, &self.order_by, sort_bound, opts.threads, cancel);
            out = sorted;
            profile.stages.push(StageProfile {
                name: if sstats.top_k { "top-k" } else { "order-by" },
                rows_out: out.rows(),
                wall: t_order.elapsed(),
                threads: sstats.threads,
                partitions: sstats.runs,
                eval_wall: sstats.sort_wall,
                merge_wall: sstats.merge_wall,
                ..StageProfile::default()
            });
        }
        cancel.check()?;
        if let Some(k) = self.offset {
            let t_stage = Instant::now();
            let k = k.min(out.rows());
            for col in &mut out.columns {
                col.drain(..k);
            }
            profile.stages.push(StageProfile {
                name: "offset",
                rows_out: out.rows(),
                wall: t_stage.elapsed(),
                ..StageProfile::default()
            });
        }
        if let Some(n) = self.limit {
            let t_stage = Instant::now();
            for col in &mut out.columns {
                col.truncate(n);
            }
            profile.stages.push(StageProfile {
                name: "limit",
                rows_out: out.rows(),
                wall: t_stage.elapsed(),
                ..StageProfile::default()
            });
        }
        // Hidden sort-key columns (`ORDER BY <expr>`) are dropped last.
        if let Some(v) = self.visible {
            out.columns.truncate(v);
        }

        profile.total = t_query.elapsed();
        profile.rows_out = out.rows();
        publish_profile(&profile);
        Ok(ResultSet {
            chunk: out,
            scan_stats: stats,
            profile,
        })
    }

    fn estimate_join(
        &self,
        inner_joins: &[&JoinClause],
        ji: usize,
        comp_of: &[usize],
        comp_est: &[f64],
        lookup: &dyn Fn(&str) -> (usize, usize),
    ) -> f64 {
        let j = inner_joins[ji];
        let (lt, ls) = lookup(&j.left);
        let (rt, rs) = lookup(&j.right);
        let (lc, rc) = (comp_of[lt], comp_of[rt]);
        if lc == rc {
            return 0.0; // already-joined filter: free, do it first
        }
        comp_est[lc] * comp_est[rc] / join_key_distinct(&self.tables, lt, ls, rt, rs).max(1.0)
    }
}

/// Distinct-count estimate for a join key pair: the max of both sides'
/// HyperLogLog estimates (§4.6 — "the filter predicates … leverage the
/// distinct counts of the HyperLogLog sketches" for join ordering).
fn join_key_distinct(
    tables: &[TableScanDef<'_>],
    lt: usize,
    ls: usize,
    rt: usize,
    rs: usize,
) -> f64 {
    let (l, r) = (&tables[lt], &tables[rt]);
    crate::cost::CostModel::default().join_key_distinct(
        l.rel,
        &l.accesses[ls].path.to_string(),
        r.rel,
        &r.accesses[rs].path.to_string(),
    )
}

/// Estimated scan output: base cardinality times a selectivity guess per
/// top-level conjunct. The actual scanned chunk (already available) is used
/// as the true value — the estimate path exists so that join ordering can
/// also be exercised without executing scans first.
fn estimate_scan_rows(t: &TableScanDef<'_>, actual: Option<&Chunk>) -> f64 {
    if let Some(c) = actual {
        return c.rows() as f64;
    }
    sample_scan_rows(t, 256)
}

/// Plan-time cardinality estimation by static document sampling (§4.6:
/// "different documents are sampled statically at query plan generation to
/// find more accurate estimations"). Evaluates the pushed-down accesses and
/// filter on up to `samples` evenly spaced rows and scales the pass rate to
/// the relation size.
fn sample_scan_rows(t: &TableScanDef<'_>, samples: usize) -> f64 {
    crate::cost::CostModel { samples }.scan_rows(t.rel, &t.accesses, t.filter.as_ref())
}

/// Publish one query's profile to the global registry. Gated on
/// [`jt_obs::enabled`]; stage names are dynamic, so the registry is used
/// directly instead of the handle-caching macros.
fn publish_profile(profile: &ExecProfile) {
    if !jt_obs::enabled() {
        return;
    }
    let ns = |d: std::time::Duration| d.as_nanos().min(u64::MAX as u128) as u64;
    let g = jt_obs::global();
    g.counter("query.executed").inc();
    g.histogram("query.exec.total_ns").record(ns(profile.total));
    for s in &profile.scans {
        g.histogram("query.exec.scan_ns").record(ns(s.wall));
    }
    for j in &profile.joins {
        g.histogram("query.exec.join_ns").record(ns(j.wall));
        g.counter("query.join.build_rows").add(j.build_rows as u64);
        g.counter("query.join.probe_rows").add(j.probe_rows as u64);
        g.counter("query.join.rows_out").add(j.rows_out as u64);
        if j.partitions > 0 {
            g.counter("query.join.partitions").add(j.partitions as u64);
            g.counter("query.join.threads").add(j.threads as u64);
            g.histogram("query.join.build_ns").record(ns(j.build_wall));
            g.histogram("query.join.probe_ns").record(ns(j.probe_wall));
        }
    }
    for st in &profile.stages {
        g.histogram(&format!("query.exec.{}_ns", st.name))
            .record(ns(st.wall));
        if st.threads > 0 {
            g.counter(&format!("query.stage.{}.threads", st.name))
                .add(st.threads as u64);
        }
        // partitions means hash partitions for aggregation, sorted runs
        // (or top-K candidate heaps) for the sort stage — attribute them
        // to the right metric family by stage name.
        if st.partitions > 0 && st.name == "aggregate" {
            g.counter("query.agg.partitions").add(st.partitions as u64);
            g.histogram("query.agg.eval_ns").record(ns(st.eval_wall));
            g.histogram("query.agg.accumulate_ns")
                .record(ns(st.accumulate_wall));
            g.histogram("query.agg.merge_ns").record(ns(st.merge_wall));
        }
        if st.partitions > 0 && (st.name == "order-by" || st.name == "top-k") {
            g.counter("query.sort.runs").add(st.partitions as u64);
            if st.name == "top-k" {
                g.counter("query.sort.top_k").inc();
            }
            g.histogram("query.sort.sort_ns").record(ns(st.eval_wall));
            g.histogram("query.sort.merge_ns").record(ns(st.merge_wall));
        }
    }
}

/// Threads a row-parallel post-join stage will actually use: 1 below the
/// morsel threshold (thread spawn costs more than the stage), else the
/// configured count.
fn stage_threads(rows: usize, threads: usize) -> usize {
    if threads <= 1 || rows < PAR_MIN_ROWS {
        1
    } else {
        threads
    }
}

fn filter_chunk(chunk: Chunk, pred: &Expr) -> Chunk {
    let mut out = Chunk::empty(chunk.width());
    for row in 0..chunk.rows() {
        if pred.eval_bool(&chunk, row) {
            for (c, col) in chunk.columns.iter().enumerate() {
                out.columns[c].push(col[row].clone());
            }
        }
    }
    out
}

/// Morsel-parallel [`filter_chunk`]: workers filter contiguous row ranges
/// and the kept rows are concatenated in range order, so output order (and
/// therefore the result) is identical at every thread count.
fn filter_chunk_par(chunk: Chunk, pred: &Expr, threads: usize, cancel: &CancelToken) -> Chunk {
    if threads <= 1 || chunk.rows() < PAR_MIN_ROWS {
        if cancel.is_cancelled() {
            return Chunk::empty(chunk.width());
        }
        return filter_chunk(chunk, pred);
    }
    let src = &chunk;
    let parts = run_workers_guarded(
        cancel,
        worker_ranges(src.rows(), threads),
        |range| {
            let mut out = Chunk::empty(src.width());
            for row in range {
                if pred.eval_bool(src, row) {
                    for (c, col) in src.columns.iter().enumerate() {
                        out.columns[c].push(col[row].clone());
                    }
                }
            }
            out
        },
        |_| Chunk::empty(src.width()),
    );
    let mut out = Chunk::empty(chunk.width());
    for p in parts {
        out.append(p);
    }
    out
}

/// Morsel-parallel projection: each worker evaluates the select expressions
/// over a contiguous row range; range-order concatenation keeps the output
/// bit-identical to the sequential loop.
fn project_chunk_par(input: &Chunk, exprs: &[Expr], threads: usize, cancel: &CancelToken) -> Chunk {
    let eval_range = |range: std::ops::Range<usize>| {
        let mut proj = Chunk::empty(exprs.len());
        for row in range {
            for (c, e) in exprs.iter().enumerate() {
                proj.columns[c].push(e.eval(input, row));
            }
        }
        proj
    };
    if threads <= 1 || input.rows() < PAR_MIN_ROWS {
        if cancel.is_cancelled() {
            return Chunk::empty(exprs.len());
        }
        return eval_range(0..input.rows());
    }
    let parts = run_workers_guarded(
        cancel,
        worker_ranges(input.rows(), threads),
        eval_range,
        |_| Chunk::empty(exprs.len()),
    );
    let mut out = Chunk::empty(exprs.len());
    for p in parts {
        out.append(p);
    }
    out
}

fn cross_product(left: Chunk, right: Chunk) -> Chunk {
    let mut out = Chunk::empty(left.width() + right.width());
    for l in 0..left.rows() {
        for r in 0..right.rows() {
            for (c, col) in left.columns.iter().enumerate() {
                out.columns[c].push(col[l].clone());
            }
            for (c, col) in right.columns.iter().enumerate() {
                out.columns[left.width() + c].push(col[r].clone());
            }
        }
    }
    out
}

/// Per-table section of [`Query::explain`].
#[derive(Debug, Clone)]
pub struct TableExplain {
    /// Table label from `scan`/`join`.
    pub name: String,
    /// Relation row count.
    pub total_rows: usize,
    /// Estimated rows after the pushed filter (§4.6 sampling).
    pub estimated_rows: f64,
    /// Number of pushed-down accesses.
    pub accesses: usize,
    /// Whether a filter was pushed into the scan.
    pub has_pushed_filter: bool,
    /// Null-rejecting paths eligible for tile skipping (§4.8).
    pub skip_paths: Vec<String>,
}

/// One join step of [`Query::explain`], in chosen execution order.
#[derive(Debug, Clone)]
pub struct JoinExplain {
    /// Left key slot name.
    pub left: String,
    /// Right key slot name.
    pub right: String,
    /// Estimated output cardinality when the step was chosen.
    pub estimated_output: f64,
}

/// The output of [`Query::explain`].
#[derive(Debug, Clone)]
pub struct PlanExplain {
    /// Scans, in declaration order.
    pub tables: Vec<TableExplain>,
    /// Inner joins, in the order the optimizer would execute them.
    pub join_order: Vec<JoinExplain>,
    /// Whether a cross-table filter runs after the joins.
    pub has_post_filter: bool,
    /// Number of group-by keys.
    pub group_keys: usize,
    /// Number of aggregates.
    pub aggregates: usize,
    /// Number of ORDER BY keys.
    pub order_by: usize,
    /// The LIMIT bound the sort will push into a top-K / early-exit merge
    /// (set whenever both ORDER BY and LIMIT are present).
    pub top_k: Option<usize>,
    /// Rows skipped before the limit (SQL OFFSET), if any.
    pub offset: Option<usize>,
    /// LIMIT, if any.
    pub limit: Option<usize>,
}

impl std::fmt::Display for PlanExplain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for t in &self.tables {
            writeln!(
                f,
                "scan {:<12} rows={:<8} est={:<10.0} accesses={} filter={} skip_paths=[{}]",
                t.name,
                t.total_rows,
                t.estimated_rows,
                t.accesses,
                t.has_pushed_filter,
                t.skip_paths.join(", ")
            )?;
        }
        for j in &self.join_order {
            writeln!(
                f,
                "join {} = {} (est {:.0})",
                j.left, j.right, j.estimated_output
            )?;
        }
        if self.has_post_filter {
            writeln!(f, "post-filter")?;
        }
        if self.group_keys > 0 || self.aggregates > 0 {
            writeln!(
                f,
                "aggregate keys={} aggs={}",
                self.group_keys, self.aggregates
            )?;
        }
        if self.order_by > 0 {
            match self.top_k {
                Some(n) => writeln!(f, "order-by keys={} (top-k bound {n})", self.order_by)?,
                None => writeln!(f, "order-by keys={}", self.order_by)?,
            }
        }
        if let Some(k) = self.offset {
            writeln!(f, "offset {k}")?;
        }
        if let Some(n) = self.limit {
            writeln!(f, "limit {n}")?;
        }
        Ok(())
    }
}
