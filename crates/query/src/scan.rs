//! The table scan operator (paper §4.2, §4.5, §4.8).
//!
//! Scans are morsel-parallel over tiles. For each tile the scan:
//!
//! 1. applies the §4.8 skipping test — if a null-rejecting predicate or
//!    join key references a path the tile neither extracted nor saw
//!    (Bloom filter), the tile produces nothing;
//! 2. resolves every pushed-down access once (§4.5);
//! 3. runs vectorized: pushed-down conjuncts compile to typed columnar
//!    kernels ([`crate::kernel`]) that refine a selection vector directly
//!    over the tile's column storage, ordered by estimated selectivity;
//!    conjuncts no kernel covers are evaluated by the batched residual
//!    interpreter over gathered slot vectors;
//! 4. late-materializes the output: surviving rows are gathered per column
//!    ([`jt_core::ColumnChunk::gather`]) instead of evaluated row by row.
//!
//! [`execute_scan_rowwise`] keeps the original row-at-a-time loop as an
//! oracle: it must return bit-identical results, which the property tests
//! check across storage modes and thread counts.

use crate::access::{eval_access, gather_access, resolve_access, Access, ResolvedAccess};
use crate::expr::Expr;
use crate::kernel::{self, SelVec};
use crate::scalar::Scalar;
use crate::Chunk;
use jt_core::{KeyPath, Relation, StorageMode, Tile};

/// A fully-specified scan.
pub struct ScanSpec<'a> {
    /// The relation to scan.
    pub relation: &'a Relation,
    /// Pushed-down accesses; output slot `i` is `accesses[i]`.
    pub accesses: Vec<Access>,
    /// Pushed-down filter over the access slots (already resolved).
    pub filter: Option<Expr>,
    /// Paths referenced by null-rejecting predicates or join keys — the
    /// §4.8 candidates for tile skipping.
    pub skip_paths: Vec<KeyPath>,
    /// The `no Skip` ablation switch (Figure 14).
    pub enable_skipping: bool,
}

/// Scan counters for the skipping experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScanStats {
    /// Tiles actually scanned.
    pub scanned_tiles: usize,
    /// Tiles skipped by the §4.8 test.
    pub skipped_tiles: usize,
}

/// Execute a scan with `threads` workers. Output rows preserve tile order
/// regardless of thread count, so results are deterministic.
pub fn execute_scan(spec: &ScanSpec<'_>, threads: usize) -> (Chunk, ScanStats) {
    run_scan(spec, threads, false)
}

/// The row-at-a-time reference implementation: identical results to
/// [`execute_scan`], kept as the correctness oracle and the baseline the
/// kernel micro-benchmarks compare against.
pub fn execute_scan_rowwise(spec: &ScanSpec<'_>, threads: usize) -> (Chunk, ScanStats) {
    run_scan(spec, threads, true)
}

fn run_scan(spec: &ScanSpec<'_>, threads: usize, rowwise: bool) -> (Chunk, ScanStats) {
    let tiles = spec.relation.tiles();
    let mode = spec.relation.config().mode;
    let threads = threads.max(1).min(tiles.len().max(1));

    let scan_tile = |tile_idx: usize| -> Option<Chunk> {
        let tile = &tiles[tile_idx];
        // §4.8: "if the expression is not found and null values are skipped
        // or evaluated as false, the whole JSON tile has no valuable
        // information". Only tiles-mode headers carry the needed metadata.
        if spec.enable_skipping && mode == StorageMode::Tiles {
            for path in &spec.skip_paths {
                if !tile.may_contain_path(path) {
                    return None;
                }
            }
        }
        let plans: Vec<_> = spec
            .accesses
            .iter()
            .map(|a| resolve_access(tile, a, mode))
            .collect();
        Some(if rowwise {
            scan_tile_rowwise(spec, tile, &plans)
        } else {
            scan_tile_vectorized(spec, tile, &plans)
        })
    };

    // Parallelize only when there is enough work to amortize thread spawns;
    // each worker owns a contiguous tile range and writes into its own
    // output vector, so no synchronization happens on the hot path.
    let results: Vec<Option<Chunk>> = if threads <= 1 || tiles.len() < threads * 2 {
        (0..tiles.len()).map(scan_tile).collect()
    } else {
        let per = tiles.len().div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..threads)
            .map(|t| (t * per).min(tiles.len())..((t + 1) * per).min(tiles.len()))
            .collect();
        let mut parts: Vec<Vec<Option<Chunk>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(|| range.map(scan_tile).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("scan worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    };

    let mut stats = ScanStats::default();
    let mut chunk = Chunk::empty(spec.accesses.len());
    for r in results {
        match r {
            Some(c) => {
                stats.scanned_tiles += 1;
                chunk.append(c);
            }
            None => stats.skipped_tiles += 1,
        }
    }
    (chunk, stats)
}

/// The vectorized inner loop: selection vector → typed kernels → batched
/// residual → late-materialized gather.
fn scan_tile_vectorized(spec: &ScanSpec<'_>, tile: &Tile, plans: &[ResolvedAccess]) -> Chunk {
    let n = spec.accesses.len();
    let mut sel: SelVec = (0..tile.len() as u32).collect();
    let tk = kernel::compile(spec.filter.as_ref(), &spec.accesses, plans, tile);
    for k in &tk.kernels {
        if sel.is_empty() {
            break;
        }
        k.apply(tile, &spec.accesses, &mut sel);
    }
    // Residual conjuncts: gather the slots they read for the surviving
    // rows, evaluate batch-at-a-time, and compact both the selection
    // vector and the already-gathered slot vectors by the result mask —
    // those vectors double as output columns below.
    let mut cols: Vec<Vec<Scalar>> = vec![Vec::new(); n];
    let mut gathered = vec![false; n];
    if let Some(f) = &tk.residual {
        if !sel.is_empty() {
            for &i in &f.referenced_slots() {
                cols[i] = gather_access(tile, plans[i], &spec.accesses[i], &sel);
                gathered[i] = true;
            }
            let mask = f.eval_batch(&cols, sel.len());
            let mut w = 0;
            for (i, m) in mask.iter().enumerate() {
                if matches!(m, Scalar::Bool(true)) {
                    sel.swap(w, i);
                    if w != i {
                        for c in cols.iter_mut() {
                            if !c.is_empty() {
                                c.swap(w, i);
                            }
                        }
                    }
                    w += 1;
                }
            }
            sel.truncate(w);
            for c in cols.iter_mut() {
                c.truncate(w.min(c.len()));
            }
        }
    }
    let mut out = Chunk::empty(n);
    for i in 0..n {
        out.columns[i] = if gathered[i] {
            std::mem::take(&mut cols[i])
        } else {
            gather_access(tile, plans[i], &spec.accesses[i], &sel)
        };
    }
    out
}

/// The original row-at-a-time loop, with late materialization of
/// non-filter slots.
fn scan_tile_rowwise(spec: &ScanSpec<'_>, tile: &Tile, plans: &[ResolvedAccess]) -> Chunk {
    let filter_slots: Vec<bool> = match &spec.filter {
        Some(f) => {
            let used = f.referenced_slots();
            (0..spec.accesses.len())
                .map(|i| used.contains(&i))
                .collect()
        }
        None => vec![false; spec.accesses.len()],
    };
    let mut out = Chunk::empty(spec.accesses.len());
    let mut row_buf: Vec<Scalar> = vec![Scalar::Null; spec.accesses.len()];
    for row in 0..tile.len() {
        if let Some(f) = &spec.filter {
            for (i, (a, p)) in spec.accesses.iter().zip(plans).enumerate() {
                if filter_slots[i] {
                    row_buf[i] = eval_access(tile, *p, a, row);
                }
            }
            // The filter sees exactly the access slots of this scan.
            if !f.eval_row_bool(&row_buf) {
                continue;
            }
        }
        for (i, (a, p)) in spec.accesses.iter().zip(plans).enumerate() {
            if !filter_slots[i] {
                row_buf[i] = eval_access(tile, *p, a, row);
            }
        }
        for (c, v) in out.columns.iter_mut().zip(row_buf.iter_mut()) {
            c.push(std::mem::replace(v, Scalar::Null));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, lit_str};
    use jt_core::{AccessType, Relation, TilesConfig};
    use jt_json::Value;

    fn split_docs() -> Vec<Value> {
        // First half: {a}, second half: {b} — disjoint structures in
        // separate tiles (tile size 64, no reordering needed, data ordered).
        (0..256)
            .map(|i| {
                if i < 128 {
                    jt_json::parse(&format!(r#"{{"a":{i}}}"#)).unwrap()
                } else {
                    jt_json::parse(&format!(r#"{{"b":{i}}}"#)).unwrap()
                }
            })
            .collect()
    }

    fn config() -> TilesConfig {
        TilesConfig {
            tile_size: 64,
            partition_size: 1,
            ..TilesConfig::default()
        }
    }

    #[test]
    fn skipping_eliminates_tiles_without_matches() {
        let rel = Relation::load(&split_docs(), config());
        let mut filter = col("a").gt(lit(-1));
        filter.resolve(&|_| 0);
        let spec = ScanSpec {
            relation: &rel,
            accesses: vec![Access::new("a", "a", AccessType::Int)],
            filter: Some(filter),
            skip_paths: vec![crate::access::parse_dotted_path("a")],
            enable_skipping: true,
        };
        let (chunk, stats) = execute_scan(&spec, 1);
        assert_eq!(chunk.rows(), 128, "all a-rows found");
        assert_eq!(stats.skipped_tiles, 2, "b-tiles skipped");
        assert_eq!(stats.scanned_tiles, 2);
    }

    #[test]
    fn skipping_disabled_scans_everything() {
        let rel = Relation::load(&split_docs(), config());
        let mut filter = col("a").gt(lit(-1));
        filter.resolve(&|_| 0);
        let spec = ScanSpec {
            relation: &rel,
            accesses: vec![Access::new("a", "a", AccessType::Int)],
            filter: Some(filter),
            skip_paths: vec![crate::access::parse_dotted_path("a")],
            enable_skipping: false,
        };
        let (chunk, stats) = execute_scan(&spec, 1);
        assert_eq!(chunk.rows(), 128, "same result");
        assert_eq!(stats.skipped_tiles, 0);
        assert_eq!(stats.scanned_tiles, 4);
    }

    #[test]
    fn skipping_never_changes_results() {
        let rel = Relation::load(&split_docs(), config());
        for threads in [1, 4] {
            let mut with_skip = None;
            for enable in [true, false] {
                let mut filter = col("a").ge(lit(100));
                filter.resolve(&|_| 0);
                let spec = ScanSpec {
                    relation: &rel,
                    accesses: vec![Access::new("a", "a", AccessType::Int)],
                    filter: Some(filter),
                    skip_paths: vec![crate::access::parse_dotted_path("a")],
                    enable_skipping: enable,
                };
                let (chunk, _) = execute_scan(&spec, threads);
                let vals: Vec<Option<i64>> = chunk.columns[0].iter().map(Scalar::as_i64).collect();
                match &with_skip {
                    None => with_skip = Some(vals),
                    Some(prev) => assert_eq!(prev, &vals, "threads={threads}"),
                }
            }
        }
    }

    #[test]
    fn parallel_scan_deterministic_order() {
        let rel = Relation::load(&split_docs(), config());
        let make_spec = || ScanSpec {
            relation: &rel,
            accesses: vec![
                Access::new("a", "a", AccessType::Int),
                Access::new("b", "b", AccessType::Int),
            ],
            filter: None,
            skip_paths: vec![],
            enable_skipping: true,
        };
        let (seq, _) = execute_scan(&make_spec(), 1);
        let (par, _) = execute_scan(&make_spec(), 8);
        assert_eq!(seq.rows(), 256);
        assert_eq!(par.rows(), 256);
        for row in 0..256 {
            assert!(
                seq.get(row, 0).group_eq(par.get(row, 0))
                    || (seq.get(row, 0).is_null() && par.get(row, 0).is_null())
            );
            assert!(
                seq.get(row, 1).group_eq(par.get(row, 1))
                    || (seq.get(row, 1).is_null() && par.get(row, 1).is_null())
            );
        }
    }

    #[test]
    fn vectorized_matches_rowwise_oracle() {
        // Mixed-structure docs exercising kernels (int range, string eq,
        // null tests) plus a residual (slot-to-slot comparison).
        let docs: Vec<Value> = (0..300)
            .map(|i| {
                if i % 5 == 0 {
                    jt_json::parse(&format!(r#"{{"a":{i},"s":"tag{}"}}"#, i % 11)).unwrap()
                } else {
                    jt_json::parse(&format!(
                        r#"{{"a":{i},"b":{},"s":"tag{}","d":"2021-0{}-01"}}"#,
                        i * 2,
                        i % 11,
                        1 + i % 9
                    ))
                    .unwrap()
                }
            })
            .collect();
        let rel = Relation::load(&docs, config());
        let accesses = vec![
            Access::new("a", "a", AccessType::Int),
            Access::new("b", "b", AccessType::Int),
            Access::new("s", "s", AccessType::Text),
            Access::new("d", "d", AccessType::Timestamp),
        ];
        let lookup = |name: &str| accesses.iter().position(|a| a.name == name).unwrap();
        let filters = [
            Some(col("a").gt(lit(30)).and(col("s").contains("ag3"))),
            Some(col("b").is_null().or(col("b").eq(col("a").mul(lit(2))))),
            Some(col("s").eq(lit_str("tag7")).and(col("d").is_not_null())),
            Some(col("d").year().eq(lit(2021)).and(col("a").lt(lit(250)))),
            None,
        ];
        for filter in filters {
            let resolved = filter.map(|mut f| {
                f.resolve(&lookup);
                f
            });
            for threads in [1, 4] {
                let make_spec = || ScanSpec {
                    relation: &rel,
                    accesses: accesses.clone(),
                    filter: resolved.clone(),
                    skip_paths: vec![],
                    enable_skipping: true,
                };
                let (vec_chunk, _) = execute_scan(&make_spec(), threads);
                let (row_chunk, _) = execute_scan_rowwise(&make_spec(), threads);
                assert_eq!(vec_chunk.rows(), row_chunk.rows(), "{resolved:?}");
                for c in 0..vec_chunk.width() {
                    for r in 0..vec_chunk.rows() {
                        let (v, w) = (vec_chunk.get(r, c), row_chunk.get(r, c));
                        assert!(
                            v.group_eq(w) || (v.is_null() && w.is_null()),
                            "{resolved:?} row {r} col {c}: {v:?} vs {w:?}"
                        );
                    }
                }
            }
        }
    }
}
