//! The table scan operator (paper §4.2, §4.5, §4.8).
//!
//! Scans are morsel-parallel over tiles. For each tile the scan:
//!
//! 1. applies the §4.8 skipping test — if a null-rejecting predicate or
//!    join key references a path the tile neither extracted nor saw
//!    (Bloom filter), the tile produces nothing;
//! 2. resolves every pushed-down access once (§4.5);
//! 3. runs vectorized: pushed-down conjuncts compile to typed columnar
//!    kernels ([`crate::kernel`]) that refine a selection vector directly
//!    over the tile's column storage, ordered by estimated selectivity;
//!    conjuncts no kernel covers are evaluated by the batched residual
//!    interpreter over gathered slot vectors;
//! 4. late-materializes the output: surviving rows are gathered per column
//!    ([`jt_core::ColumnChunk::gather`]) instead of evaluated row by row.
//!
//! [`execute_scan_rowwise`] keeps the original row-at-a-time loop as an
//! oracle: it must return bit-identical results, which the property tests
//! check across storage modes and thread counts.

use crate::access::{eval_access, gather_access, resolve_access, Access, ResolvedAccess};
use crate::cancel::CancelToken;
use crate::expr::Expr;
use crate::kernel::{self, SelVec};
use crate::scalar::Scalar;
use crate::Chunk;
use jt_core::{KeyPath, Relation, SkipEvidence, StorageMode, Tile};

/// A fully-specified scan.
pub struct ScanSpec<'a> {
    /// The relation to scan.
    pub relation: &'a Relation,
    /// Pushed-down accesses; output slot `i` is `accesses[i]`.
    pub accesses: Vec<Access>,
    /// Pushed-down filter over the access slots (already resolved).
    pub filter: Option<Expr>,
    /// Paths referenced by null-rejecting predicates or join keys — the
    /// §4.8 candidates for tile skipping.
    pub skip_paths: Vec<KeyPath>,
    /// The `no Skip` ablation switch (Figure 14).
    pub enable_skipping: bool,
    /// Row bound from the planner's bound-propagation pass: each worker
    /// stops scanning new tiles once it has produced this many output rows.
    /// The result is a per-worker prefix (≥ the bound, or complete), so the
    /// concatenated output's first `limit_hint` rows are bit-identical to
    /// the unbounded scan's at every thread count; rows past the bound are
    /// not contractual and the caller must truncate.
    pub limit_hint: Option<usize>,
}

/// Scan counters for the skipping experiments and `EXPLAIN ANALYZE`.
///
/// Two identities hold for every scan (checked by `debug_assert` in the
/// executor and by the observability integration tests):
///
/// * `scanned_tiles + skipped_tiles == total_tiles`
/// * `rows_kernel + rows_batched + rows_exact + rows_passthrough ==
///   rows_scanned`
///
/// Row attribution is *first-touch*: each row of a scanned tile is counted
/// once, under whichever evaluation stage saw it first — a typed columnar
/// kernel (`rows_kernel`), the exact row-wise fallback inside a kernel
/// (`rows_exact`), the batched residual interpreter when no kernel compiled
/// (`rows_batched`), or no filter at all (`rows_passthrough`). The
/// `*_evals` counters are totals across all stages, not first-touch.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScanStats {
    /// Tiles actually scanned.
    pub scanned_tiles: usize,
    /// Tiles skipped by the §4.8 test.
    pub skipped_tiles: usize,
    /// All tiles the scan considered (`scanned + skipped`).
    pub total_tiles: usize,
    /// Skipped tiles whose absence proof came from the exact per-tile
    /// path-frequency statistics.
    pub skipped_header_stats: usize,
    /// Skipped tiles proven empty by the Bloom filter over seen paths.
    pub skipped_bloom: usize,
    /// Tiles never scanned because the worker already produced
    /// [`ScanSpec::limit_hint`] rows (no absence evidence involved).
    pub skipped_bound: usize,
    /// Rows in scanned (non-skipped) tiles.
    pub rows_scanned: u64,
    /// Rows whose first filter evaluation ran in a typed kernel arm.
    pub rows_kernel: u64,
    /// Rows whose first evaluation was the batched residual interpreter
    /// (a filter none of whose conjuncts compiled to kernels).
    pub rows_batched: u64,
    /// Rows whose first evaluation was the exact row-wise fallback (null
    /// fallback entries, unspecialized ops, and the row-wise oracle).
    pub rows_exact: u64,
    /// Rows of scanned tiles with no filter to evaluate.
    pub rows_passthrough: u64,
    /// Rows surviving the filter (the scan's output).
    pub rows_out: u64,
    /// Total typed-kernel row evaluations across all kernels.
    pub kernel_evals: u64,
    /// Total batched-residual row evaluations.
    pub residual_evals: u64,
    /// Total exact row-wise evaluations (inside kernels and the oracle).
    pub exact_evals: u64,
}

impl ScanStats {
    /// Fold `other` into `self` (per-tile and per-table accumulation).
    pub fn merge(&mut self, other: &ScanStats) {
        self.scanned_tiles += other.scanned_tiles;
        self.skipped_tiles += other.skipped_tiles;
        self.total_tiles += other.total_tiles;
        self.skipped_header_stats += other.skipped_header_stats;
        self.skipped_bloom += other.skipped_bloom;
        self.skipped_bound += other.skipped_bound;
        self.rows_scanned += other.rows_scanned;
        self.rows_kernel += other.rows_kernel;
        self.rows_batched += other.rows_batched;
        self.rows_exact += other.rows_exact;
        self.rows_passthrough += other.rows_passthrough;
        self.rows_out += other.rows_out;
        self.kernel_evals += other.kernel_evals;
        self.residual_evals += other.residual_evals;
        self.exact_evals += other.exact_evals;
    }

    /// Rows accounted for by first-touch attribution; equals
    /// [`ScanStats::rows_scanned`] for every scan.
    pub fn rows_attributed(&self) -> u64 {
        self.rows_kernel + self.rows_batched + self.rows_exact + self.rows_passthrough
    }
}

/// Execute a scan with `threads` workers. Output rows preserve tile order
/// regardless of thread count, so results are deterministic.
pub fn execute_scan(spec: &ScanSpec<'_>, threads: usize) -> (Chunk, ScanStats) {
    run_scan(spec, threads, false, &CancelToken::none())
}

/// [`execute_scan`] polling `cancel` before every tile — the scan's morsel
/// boundary. Once the token trips, remaining tiles are counted as skipped
/// and produce no rows; the caller is expected to discard the truncated
/// chunk by checking the token after the scan.
pub fn execute_scan_cancellable(
    spec: &ScanSpec<'_>,
    threads: usize,
    cancel: &CancelToken,
) -> (Chunk, ScanStats) {
    run_scan(spec, threads, false, cancel)
}

/// The row-at-a-time reference implementation: identical results to
/// [`execute_scan`], kept as the correctness oracle and the baseline the
/// kernel micro-benchmarks compare against.
pub fn execute_scan_rowwise(spec: &ScanSpec<'_>, threads: usize) -> (Chunk, ScanStats) {
    run_scan(spec, threads, true, &CancelToken::none())
}

fn run_scan(
    spec: &ScanSpec<'_>,
    threads: usize,
    rowwise: bool,
    cancel: &CancelToken,
) -> (Chunk, ScanStats) {
    let tiles = spec.relation.tiles();
    let mode = spec.relation.config().mode;
    let threads = threads.max(1).min(tiles.len().max(1));

    let scan_tile = |tile_idx: usize| -> (Option<Chunk>, ScanStats) {
        let tile = &tiles[tile_idx];
        let mut ts = ScanStats {
            total_tiles: 1,
            ..ScanStats::default()
        };
        // Morsel-boundary cancellation: an aborted query counts its
        // remaining tiles as skipped (keeping the tile-accounting identity)
        // and emits nothing for them.
        if cancel.is_cancelled() {
            ts.skipped_tiles = 1;
            return (None, ts);
        }
        // §4.8: "if the expression is not found and null values are skipped
        // or evaluated as false, the whole JSON tile has no valuable
        // information". Only tiles-mode headers carry the needed metadata.
        if spec.enable_skipping && mode == StorageMode::Tiles {
            for path in &spec.skip_paths {
                if let Some(evidence) = tile.skip_evidence(path) {
                    ts.skipped_tiles = 1;
                    match evidence {
                        SkipEvidence::HeaderStats => ts.skipped_header_stats = 1,
                        SkipEvidence::BloomFilter => ts.skipped_bloom = 1,
                    }
                    return (None, ts);
                }
            }
        }
        ts.scanned_tiles = 1;
        ts.rows_scanned = tile.len() as u64;
        let plans: Vec<_> = spec
            .accesses
            .iter()
            .map(|a| resolve_access(tile, a, mode))
            .collect();
        let chunk = if rowwise {
            scan_tile_rowwise(spec, tile, &plans, &mut ts)
        } else {
            scan_tile_vectorized(spec, tile, &plans, &mut ts)
        };
        ts.rows_out = chunk.rows() as u64;
        (Some(chunk), ts)
    };

    // One worker's contiguous tile range, with the planner's row-bound
    // early exit: once this worker has emitted `limit_hint` rows, its
    // remaining tiles are counted as bound-skipped and produce nothing.
    // Each worker's output is therefore a prefix (≥ the bound, or
    // complete) of its unbounded output, and ranges concatenate in tile
    // order — the global first `limit_hint` rows match the unbounded scan.
    let scan_range = |range: std::ops::Range<usize>| -> Vec<(Option<Chunk>, ScanStats)> {
        let mut out = Vec::with_capacity(range.len());
        let mut emitted = 0usize;
        for tile_idx in range {
            if spec.limit_hint.is_some_and(|b| emitted >= b) {
                out.push((
                    None,
                    ScanStats {
                        total_tiles: 1,
                        skipped_tiles: 1,
                        skipped_bound: 1,
                        ..ScanStats::default()
                    },
                ));
                continue;
            }
            let r = scan_tile(tile_idx);
            if let (Some(c), _) = &r {
                emitted += c.rows();
            }
            out.push(r);
        }
        out
    };

    // Parallelize only when there is enough work to amortize thread spawns;
    // each worker owns a contiguous tile range and writes into its own
    // output vector, so no synchronization happens on the hot path.
    let results: Vec<(Option<Chunk>, ScanStats)> = if threads <= 1 || tiles.len() < threads * 2 {
        scan_range(0..tiles.len())
    } else {
        let per = tiles.len().div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..threads)
            .map(|t| (t * per).min(tiles.len())..((t + 1) * per).min(tiles.len()))
            .collect();
        let mut parts: Vec<Vec<(Option<Chunk>, ScanStats)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(|| scan_range(range)))
                .collect();
            for h in handles {
                parts.push(h.join().expect("scan worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    };

    let mut stats = ScanStats::default();
    let mut chunk = Chunk::empty(spec.accesses.len());
    for (r, ts) in results {
        stats.merge(&ts);
        if let Some(c) = r {
            chunk.append(c);
        }
    }
    debug_assert_eq!(
        stats.scanned_tiles + stats.skipped_tiles,
        stats.total_tiles,
        "every tile must be either scanned or skipped"
    );
    debug_assert_eq!(
        stats.rows_attributed(),
        stats.rows_scanned,
        "first-touch attribution must cover every scanned row"
    );
    jt_obs::counter_add!("query.scan.tiles_total", stats.total_tiles as u64);
    jt_obs::counter_add!("query.scan.tiles_scanned", stats.scanned_tiles as u64);
    jt_obs::counter_add!("query.scan.tiles_skipped", stats.skipped_tiles as u64);
    jt_obs::counter_add!(
        "query.scan.tiles_skipped_header_stats",
        stats.skipped_header_stats as u64
    );
    jt_obs::counter_add!("query.scan.tiles_skipped_bloom", stats.skipped_bloom as u64);
    jt_obs::counter_add!("query.scan.tiles_skipped_bound", stats.skipped_bound as u64);
    jt_obs::counter_add!("query.scan.rows_scanned", stats.rows_scanned);
    jt_obs::counter_add!("query.scan.rows_kernel", stats.rows_kernel);
    jt_obs::counter_add!("query.scan.rows_batched", stats.rows_batched);
    jt_obs::counter_add!("query.scan.rows_exact", stats.rows_exact);
    jt_obs::counter_add!("query.scan.rows_passthrough", stats.rows_passthrough);
    jt_obs::counter_add!("query.scan.rows_out", stats.rows_out);
    (chunk, stats)
}

/// The vectorized inner loop: selection vector → typed kernels → batched
/// residual → late-materialized gather. Fills first-touch row attribution
/// and per-stage evaluation totals into `stats`.
fn scan_tile_vectorized(
    spec: &ScanSpec<'_>,
    tile: &Tile,
    plans: &[ResolvedAccess],
    stats: &mut ScanStats,
) -> Chunk {
    let n = spec.accesses.len();
    let mut sel: SelVec = (0..tile.len() as u32).collect();
    let tk = kernel::compile(spec.filter.as_ref(), &spec.accesses, plans, tile);
    match &spec.filter {
        None => stats.rows_passthrough += tile.len() as u64,
        // A filter none of whose conjuncts kernelized: every row's first
        // evaluation happens in the batched residual interpreter.
        Some(_) if tk.kernels.is_empty() => stats.rows_batched += tile.len() as u64,
        Some(_) => {}
    }
    let mut first = true;
    for k in &tk.kernels {
        if sel.is_empty() {
            break;
        }
        let before = sel.len() as u64;
        let exact = k.apply(tile, &spec.accesses, &mut sel);
        stats.kernel_evals += before - exact;
        stats.exact_evals += exact;
        if first {
            // The first kernel sees every row of the tile exactly once;
            // partition them into typed-arm vs exact-fallback first touches.
            stats.rows_kernel += before - exact;
            stats.rows_exact += exact;
            first = false;
        }
    }
    // Residual conjuncts: gather the slots they read for the surviving
    // rows, evaluate batch-at-a-time, and compact both the selection
    // vector and the already-gathered slot vectors by the result mask —
    // those vectors double as output columns below.
    let mut cols: Vec<Vec<Scalar>> = vec![Vec::new(); n];
    let mut gathered = vec![false; n];
    if let Some(f) = &tk.residual {
        if !sel.is_empty() {
            stats.residual_evals += sel.len() as u64;
            for &i in &f.referenced_slots() {
                cols[i] = gather_access(tile, plans[i], &spec.accesses[i], &sel);
                gathered[i] = true;
            }
            let mask = f.eval_batch(&cols, sel.len());
            let mut w = 0;
            for (i, m) in mask.iter().enumerate() {
                if matches!(m, Scalar::Bool(true)) {
                    sel.swap(w, i);
                    if w != i {
                        for c in cols.iter_mut() {
                            if !c.is_empty() {
                                c.swap(w, i);
                            }
                        }
                    }
                    w += 1;
                }
            }
            sel.truncate(w);
            for c in cols.iter_mut() {
                c.truncate(w.min(c.len()));
            }
        }
    }
    let mut out = Chunk::empty(n);
    for i in 0..n {
        out.columns[i] = if gathered[i] {
            std::mem::take(&mut cols[i])
        } else {
            gather_access(tile, plans[i], &spec.accesses[i], &sel)
        };
    }
    out
}

/// The original row-at-a-time loop, with late materialization of
/// non-filter slots. Every filtered row is an exact evaluation; with no
/// filter the rows pass through.
fn scan_tile_rowwise(
    spec: &ScanSpec<'_>,
    tile: &Tile,
    plans: &[ResolvedAccess],
    stats: &mut ScanStats,
) -> Chunk {
    if spec.filter.is_some() {
        stats.rows_exact += tile.len() as u64;
        stats.exact_evals += tile.len() as u64;
    } else {
        stats.rows_passthrough += tile.len() as u64;
    }
    let filter_slots: Vec<bool> = match &spec.filter {
        Some(f) => {
            let used = f.referenced_slots();
            (0..spec.accesses.len())
                .map(|i| used.contains(&i))
                .collect()
        }
        None => vec![false; spec.accesses.len()],
    };
    let mut out = Chunk::empty(spec.accesses.len());
    let mut row_buf: Vec<Scalar> = vec![Scalar::Null; spec.accesses.len()];
    for row in 0..tile.len() {
        if let Some(f) = &spec.filter {
            for (i, (a, p)) in spec.accesses.iter().zip(plans).enumerate() {
                if filter_slots[i] {
                    row_buf[i] = eval_access(tile, *p, a, row);
                }
            }
            // The filter sees exactly the access slots of this scan.
            if !f.eval_row_bool(&row_buf) {
                continue;
            }
        }
        for (i, (a, p)) in spec.accesses.iter().zip(plans).enumerate() {
            if !filter_slots[i] {
                row_buf[i] = eval_access(tile, *p, a, row);
            }
        }
        for (c, v) in out.columns.iter_mut().zip(row_buf.iter_mut()) {
            c.push(std::mem::replace(v, Scalar::Null));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, lit_str};
    use jt_core::{AccessType, Relation, TilesConfig};
    use jt_json::Value;

    fn split_docs() -> Vec<Value> {
        // First half: {a}, second half: {b} — disjoint structures in
        // separate tiles (tile size 64, no reordering needed, data ordered).
        (0..256)
            .map(|i| {
                if i < 128 {
                    jt_json::parse(&format!(r#"{{"a":{i}}}"#)).unwrap()
                } else {
                    jt_json::parse(&format!(r#"{{"b":{i}}}"#)).unwrap()
                }
            })
            .collect()
    }

    fn config() -> TilesConfig {
        TilesConfig {
            tile_size: 64,
            partition_size: 1,
            ..TilesConfig::default()
        }
    }

    #[test]
    fn skipping_eliminates_tiles_without_matches() {
        let rel = Relation::load(&split_docs(), config());
        let mut filter = col("a").gt(lit(-1));
        filter.resolve(&|_| 0);
        let spec = ScanSpec {
            relation: &rel,
            accesses: vec![Access::new("a", "a", AccessType::Int)],
            filter: Some(filter),
            skip_paths: vec![crate::access::parse_dotted_path("a")],
            enable_skipping: true,
            limit_hint: None,
        };
        let (chunk, stats) = execute_scan(&spec, 1);
        assert_eq!(chunk.rows(), 128, "all a-rows found");
        assert_eq!(stats.skipped_tiles, 2, "b-tiles skipped");
        assert_eq!(stats.scanned_tiles, 2);
    }

    #[test]
    fn skipping_disabled_scans_everything() {
        let rel = Relation::load(&split_docs(), config());
        let mut filter = col("a").gt(lit(-1));
        filter.resolve(&|_| 0);
        let spec = ScanSpec {
            relation: &rel,
            accesses: vec![Access::new("a", "a", AccessType::Int)],
            filter: Some(filter),
            skip_paths: vec![crate::access::parse_dotted_path("a")],
            enable_skipping: false,
            limit_hint: None,
        };
        let (chunk, stats) = execute_scan(&spec, 1);
        assert_eq!(chunk.rows(), 128, "same result");
        assert_eq!(stats.skipped_tiles, 0);
        assert_eq!(stats.scanned_tiles, 4);
    }

    #[test]
    fn skipping_never_changes_results() {
        let rel = Relation::load(&split_docs(), config());
        for threads in [1, 4] {
            let mut with_skip = None;
            for enable in [true, false] {
                let mut filter = col("a").ge(lit(100));
                filter.resolve(&|_| 0);
                let spec = ScanSpec {
                    relation: &rel,
                    accesses: vec![Access::new("a", "a", AccessType::Int)],
                    filter: Some(filter),
                    skip_paths: vec![crate::access::parse_dotted_path("a")],
                    enable_skipping: enable,
                    limit_hint: None,
                };
                let (chunk, _) = execute_scan(&spec, threads);
                let vals: Vec<Option<i64>> = chunk.columns[0].iter().map(Scalar::as_i64).collect();
                match &with_skip {
                    None => with_skip = Some(vals),
                    Some(prev) => assert_eq!(prev, &vals, "threads={threads}"),
                }
            }
        }
    }

    #[test]
    fn parallel_scan_deterministic_order() {
        let rel = Relation::load(&split_docs(), config());
        let make_spec = || ScanSpec {
            relation: &rel,
            accesses: vec![
                Access::new("a", "a", AccessType::Int),
                Access::new("b", "b", AccessType::Int),
            ],
            filter: None,
            skip_paths: vec![],
            enable_skipping: true,
            limit_hint: None,
        };
        let (seq, _) = execute_scan(&make_spec(), 1);
        let (par, _) = execute_scan(&make_spec(), 8);
        assert_eq!(seq.rows(), 256);
        assert_eq!(par.rows(), 256);
        for row in 0..256 {
            assert!(
                seq.get(row, 0).group_eq(par.get(row, 0))
                    || (seq.get(row, 0).is_null() && par.get(row, 0).is_null())
            );
            assert!(
                seq.get(row, 1).group_eq(par.get(row, 1))
                    || (seq.get(row, 1).is_null() && par.get(row, 1).is_null())
            );
        }
    }

    #[test]
    fn vectorized_matches_rowwise_oracle() {
        // Mixed-structure docs exercising kernels (int range, string eq,
        // null tests) plus a residual (slot-to-slot comparison).
        let docs: Vec<Value> = (0..300)
            .map(|i| {
                if i % 5 == 0 {
                    jt_json::parse(&format!(r#"{{"a":{i},"s":"tag{}"}}"#, i % 11)).unwrap()
                } else {
                    jt_json::parse(&format!(
                        r#"{{"a":{i},"b":{},"s":"tag{}","d":"2021-0{}-01"}}"#,
                        i * 2,
                        i % 11,
                        1 + i % 9
                    ))
                    .unwrap()
                }
            })
            .collect();
        let rel = Relation::load(&docs, config());
        let accesses = vec![
            Access::new("a", "a", AccessType::Int),
            Access::new("b", "b", AccessType::Int),
            Access::new("s", "s", AccessType::Text),
            Access::new("d", "d", AccessType::Timestamp),
        ];
        let lookup = |name: &str| accesses.iter().position(|a| a.name == name).unwrap();
        let filters = [
            Some(col("a").gt(lit(30)).and(col("s").contains("ag3"))),
            Some(col("b").is_null().or(col("b").eq(col("a").mul(lit(2))))),
            Some(col("s").eq(lit_str("tag7")).and(col("d").is_not_null())),
            Some(col("d").year().eq(lit(2021)).and(col("a").lt(lit(250)))),
            None,
        ];
        for filter in filters {
            let resolved = filter.map(|mut f| {
                f.resolve(&lookup);
                f
            });
            for threads in [1, 4] {
                let make_spec = || ScanSpec {
                    relation: &rel,
                    accesses: accesses.clone(),
                    filter: resolved.clone(),
                    skip_paths: vec![],
                    enable_skipping: true,
                    limit_hint: None,
                };
                let (vec_chunk, _) = execute_scan(&make_spec(), threads);
                let (row_chunk, _) = execute_scan_rowwise(&make_spec(), threads);
                assert_eq!(vec_chunk.rows(), row_chunk.rows(), "{resolved:?}");
                for c in 0..vec_chunk.width() {
                    for r in 0..vec_chunk.rows() {
                        let (v, w) = (vec_chunk.get(r, c), row_chunk.get(r, c));
                        assert!(
                            v.group_eq(w) || (v.is_null() && w.is_null()),
                            "{resolved:?} row {r} col {c}: {v:?} vs {w:?}"
                        );
                    }
                }
            }
        }
    }
}
