//! The table scan operator (paper §4.2, §4.5, §4.8).
//!
//! Scans are morsel-parallel over tiles. For each tile the scan:
//!
//! 1. applies the §4.8 skipping test — if a null-rejecting predicate or
//!    join key references a path the tile neither extracted nor saw
//!    (Bloom filter), the tile produces nothing;
//! 2. resolves every pushed-down access once (§4.5);
//! 3. evaluates accesses and the pushed-down filter row by row,
//!    materializing only passing rows.

use crate::access::{eval_access, resolve_access, Access};
use crate::expr::Expr;
use crate::scalar::Scalar;
use crate::Chunk;
use jt_core::{KeyPath, Relation, StorageMode};

/// A fully-specified scan.
pub struct ScanSpec<'a> {
    /// The relation to scan.
    pub relation: &'a Relation,
    /// Pushed-down accesses; output slot `i` is `accesses[i]`.
    pub accesses: Vec<Access>,
    /// Pushed-down filter over the access slots (already resolved).
    pub filter: Option<Expr>,
    /// Paths referenced by null-rejecting predicates or join keys — the
    /// §4.8 candidates for tile skipping.
    pub skip_paths: Vec<KeyPath>,
    /// The `no Skip` ablation switch (Figure 14).
    pub enable_skipping: bool,
}

/// Scan counters for the skipping experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScanStats {
    /// Tiles actually scanned.
    pub scanned_tiles: usize,
    /// Tiles skipped by the §4.8 test.
    pub skipped_tiles: usize,
}

/// Execute a scan with `threads` workers. Output rows preserve tile order
/// regardless of thread count, so results are deterministic.
pub fn execute_scan(spec: &ScanSpec<'_>, threads: usize) -> (Chunk, ScanStats) {
    let tiles = spec.relation.tiles();
    let mode = spec.relation.config().mode;
    let threads = threads.max(1).min(tiles.len().max(1));

    let scan_tile = |tile_idx: usize| -> Option<Chunk> {
        let tile = &tiles[tile_idx];
        // §4.8: "if the expression is not found and null values are skipped
        // or evaluated as false, the whole JSON tile has no valuable
        // information". Only tiles-mode headers carry the needed metadata.
        if spec.enable_skipping && mode == StorageMode::Tiles {
            for path in &spec.skip_paths {
                if !tile.may_contain_path(path) {
                    return None;
                }
            }
        }
        let plans: Vec<_> = spec
            .accesses
            .iter()
            .map(|a| resolve_access(tile, a, mode))
            .collect();
        // Columnar predicate pushdown: string conjuncts whose access is
        // served by a non-fallback Str column are evaluated directly on the
        // column bytes (no per-row scalar materialization). Everything else
        // stays in the residual filter.
        let (fast_preds, residual) = split_fast_preds(spec, tile, &plans);
        // Late materialization: accesses the residual filter reads are
        // evaluated for every surviving row; the rest only for rows that
        // pass. With a selective pushed-down predicate this skips most of
        // the access work.
        let filter_slots: Vec<bool> = match &residual {
            Some(f) => {
                let used = f.referenced_slots();
                (0..spec.accesses.len()).map(|i| used.contains(&i)).collect()
            }
            None => vec![false; spec.accesses.len()],
        };
        let mut out = Chunk::empty(spec.accesses.len());
        let mut row_buf: Vec<Scalar> = vec![Scalar::Null; spec.accesses.len()];
        'rows: for row in 0..tile.len() {
            for fp in &fast_preds {
                let chunk = tile.column(fp.col);
                let ok = match chunk.get_str(row) {
                    None => false, // SQL: predicate on null is not true
                    Some(s) => match fp.kind {
                        StrPredKind::Eq => s == fp.pattern,
                        StrPredKind::Contains => s.contains(&fp.pattern),
                        StrPredKind::StartsWith => s.starts_with(&fp.pattern),
                        StrPredKind::EndsWith => s.ends_with(&fp.pattern),
                    },
                };
                if !ok {
                    continue 'rows;
                }
            }
            if let Some(f) = &residual {
                for (i, (a, p)) in spec.accesses.iter().zip(&plans).enumerate() {
                    if filter_slots[i] {
                        row_buf[i] = eval_access(tile, *p, a, row);
                    }
                }
                // The filter sees exactly the access slots of this scan.
                if !f.eval_row_bool(&row_buf) {
                    continue;
                }
            }
            for (i, (a, p)) in spec.accesses.iter().zip(&plans).enumerate() {
                if !filter_slots[i] {
                    row_buf[i] = eval_access(tile, *p, a, row);
                }
            }
            for (c, v) in out.columns.iter_mut().zip(row_buf.iter_mut()) {
                c.push(std::mem::replace(v, Scalar::Null));
            }
        }
        Some(out)
    };

    // Parallelize only when there is enough work to amortize thread spawns;
    // each worker owns a contiguous tile range and writes into its own
    // output vector, so no synchronization happens on the hot path.
    let results: Vec<Option<Chunk>> = if threads <= 1 || tiles.len() < threads * 2 {
        (0..tiles.len()).map(scan_tile).collect()
    } else {
        let per = tiles.len().div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..threads)
            .map(|t| (t * per).min(tiles.len())..((t + 1) * per).min(tiles.len()))
            .collect();
        let mut parts: Vec<Vec<Option<Chunk>>> = Vec::with_capacity(threads);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(|_| range.map(scan_tile).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("scan worker panicked"));
            }
        })
        .expect("scan threads");
        parts.into_iter().flatten().collect()
    };

    let mut stats = ScanStats::default();
    let mut chunk = Chunk::empty(spec.accesses.len());
    for r in results {
        match r {
            Some(c) => {
                stats.scanned_tiles += 1;
                chunk.append(c);
            }
            None => stats.skipped_tiles += 1,
        }
    }
    (chunk, stats)
}


/// A string predicate evaluated directly on a column chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StrPredKind {
    Eq,
    Contains,
    StartsWith,
    EndsWith,
}

struct FastStrPred {
    /// Column chunk index in the tile.
    col: usize,
    kind: StrPredKind,
    pattern: String,
}

/// Partition the pushed-down filter's top-level conjuncts into string
/// predicates servable straight from a (non-fallback) Str column of this
/// tile and a residual expression for everything else.
fn split_fast_preds(
    spec: &ScanSpec<'_>,
    tile: &jt_core::Tile,
    plans: &[crate::access::ResolvedAccess],
) -> (Vec<FastStrPred>, Option<Expr>) {
    let Some(filter) = &spec.filter else {
        return (Vec::new(), None);
    };
    let mut fast = Vec::new();
    let mut residual: Option<Expr> = None;
    for conjunct in conjuncts(filter) {
        match as_fast_pred(conjunct, spec, tile, plans) {
            Some(fp) => fast.push(fp),
            None => {
                residual = Some(match residual.take() {
                    Some(r) => r.and(conjunct.clone()),
                    None => conjunct.clone(),
                });
            }
        }
    }
    (fast, residual)
}

fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other],
    }
}

fn as_fast_pred(
    e: &Expr,
    spec: &ScanSpec<'_>,
    tile: &jt_core::Tile,
    plans: &[crate::access::ResolvedAccess],
) -> Option<FastStrPred> {
    let (slot, kind, pattern) = match e {
        Expr::Cmp(a, crate::expr::CmpOp::Eq, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Slot(i), Expr::Const(Scalar::Str(s)))
            | (Expr::Const(Scalar::Str(s)), Expr::Slot(i)) => {
                (*i, StrPredKind::Eq, s.to_string())
            }
            _ => return None,
        },
        Expr::Contains(a, p) => match a.as_ref() {
            Expr::Slot(i) => (*i, StrPredKind::Contains, p.clone()),
            _ => return None,
        },
        Expr::StartsWith(a, p) => match a.as_ref() {
            Expr::Slot(i) => (*i, StrPredKind::StartsWith, p.clone()),
            _ => return None,
        },
        Expr::EndsWith(a, p) => match a.as_ref() {
            Expr::Slot(i) => (*i, StrPredKind::EndsWith, p.clone()),
            _ => return None,
        },
        _ => return None,
    };
    // The access must be served by a plain Str column with no binary
    // fallback (fallback columns may hold values the chunk cannot show).
    if spec.accesses[slot].ty != jt_core::AccessType::Text {
        return None;
    }
    match plans[slot] {
        crate::access::ResolvedAccess::Column { col, fallback: false }
            if tile.column(col).col_type() == jt_core::ColType::Str =>
        {
            Some(FastStrPred { col, kind, pattern })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use jt_core::{AccessType, Relation, TilesConfig};
    use jt_json::Value;

    fn split_docs() -> Vec<Value> {
        // First half: {a}, second half: {b} — disjoint structures in
        // separate tiles (tile size 64, no reordering needed, data ordered).
        (0..256)
            .map(|i| {
                if i < 128 {
                    jt_json::parse(&format!(r#"{{"a":{i}}}"#)).unwrap()
                } else {
                    jt_json::parse(&format!(r#"{{"b":{i}}}"#)).unwrap()
                }
            })
            .collect()
    }

    fn config() -> TilesConfig {
        TilesConfig {
            tile_size: 64,
            partition_size: 1,
            ..TilesConfig::default()
        }
    }

    #[test]
    fn skipping_eliminates_tiles_without_matches() {
        let rel = Relation::load(&split_docs(), config());
        let mut filter = col("a").gt(lit(-1));
        filter.resolve(&|_| 0);
        let spec = ScanSpec {
            relation: &rel,
            accesses: vec![Access::new("a", "a", AccessType::Int)],
            filter: Some(filter),
            skip_paths: vec![crate::access::parse_dotted_path("a")],
            enable_skipping: true,
        };
        let (chunk, stats) = execute_scan(&spec, 1);
        assert_eq!(chunk.rows(), 128, "all a-rows found");
        assert_eq!(stats.skipped_tiles, 2, "b-tiles skipped");
        assert_eq!(stats.scanned_tiles, 2);
    }

    #[test]
    fn skipping_disabled_scans_everything() {
        let rel = Relation::load(&split_docs(), config());
        let mut filter = col("a").gt(lit(-1));
        filter.resolve(&|_| 0);
        let spec = ScanSpec {
            relation: &rel,
            accesses: vec![Access::new("a", "a", AccessType::Int)],
            filter: Some(filter),
            skip_paths: vec![crate::access::parse_dotted_path("a")],
            enable_skipping: false,
        };
        let (chunk, stats) = execute_scan(&spec, 1);
        assert_eq!(chunk.rows(), 128, "same result");
        assert_eq!(stats.skipped_tiles, 0);
        assert_eq!(stats.scanned_tiles, 4);
    }

    #[test]
    fn skipping_never_changes_results() {
        let rel = Relation::load(&split_docs(), config());
        for threads in [1, 4] {
            let mut with_skip = None;
            for enable in [true, false] {
                let mut filter = col("a").ge(lit(100));
                filter.resolve(&|_| 0);
                let spec = ScanSpec {
                    relation: &rel,
                    accesses: vec![Access::new("a", "a", AccessType::Int)],
                    filter: Some(filter),
                    skip_paths: vec![crate::access::parse_dotted_path("a")],
                    enable_skipping: enable,
                };
                let (chunk, _) = execute_scan(&spec, threads);
                let vals: Vec<Option<i64>> = chunk.columns[0].iter().map(Scalar::as_i64).collect();
                match &with_skip {
                    None => with_skip = Some(vals),
                    Some(prev) => assert_eq!(prev, &vals, "threads={threads}"),
                }
            }
        }
    }

    #[test]
    fn parallel_scan_deterministic_order() {
        let rel = Relation::load(&split_docs(), config());
        let make_spec = || ScanSpec {
            relation: &rel,
            accesses: vec![
                Access::new("a", "a", AccessType::Int),
                Access::new("b", "b", AccessType::Int),
            ],
            filter: None,
            skip_paths: vec![],
            enable_skipping: true,
        };
        let (seq, _) = execute_scan(&make_spec(), 1);
        let (par, _) = execute_scan(&make_spec(), 8);
        assert_eq!(seq.rows(), 256);
        assert_eq!(par.rows(), 256);
        for row in 0..256 {
            assert!(seq.get(row, 0).group_eq(par.get(row, 0)) || (seq.get(row, 0).is_null() && par.get(row, 0).is_null()));
            assert!(seq.get(row, 1).group_eq(par.get(row, 1)) || (seq.get(row, 1).is_null() && par.get(row, 1).is_null()));
        }
    }
}
