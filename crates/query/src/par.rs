//! Shared morsel-parallel execution helpers for the post-scan operators.
//!
//! Joins, aggregation, and the post-join stages all follow the same shape:
//! split the input rows into contiguous worker ranges, run each range on a
//! scoped thread, and concatenate the per-worker outputs *in worker order*.
//! Because the ranges are contiguous and ascending, worker-order
//! concatenation reproduces the global row order exactly — the parallel
//! operators stay bit-identical to their single-threaded oracles at every
//! thread count, the same guarantee `execute_scan` already gives.

use crate::cancel::CancelToken;
use crate::Chunk;
use std::ops::Range;

/// Hash partitions used by the partitioned join/aggregation operators.
/// Fixed (and a power of two) so partition assignment never depends on the
/// thread count.
pub(crate) const PARTITIONS: usize = 64;

/// Below this many input rows the sequential operator wins: spawning scoped
/// threads costs more than the whole operation.
pub(crate) const PAR_MIN_ROWS: usize = 256;

/// Deterministic 64-bit hash of canonical key bytes. Build and probe sides
/// must agree on partition assignment, so this is a fixed function rather
/// than a per-table `RandomState`.
#[inline]
pub(crate) fn key_hash(bytes: &[u8]) -> u64 {
    jt_stats::hash64(bytes, 0x4a54_5041_5254)
}

/// The hash partition of a key.
#[inline]
pub(crate) fn partition_of(hash: u64) -> usize {
    (hash as usize) & (PARTITIONS - 1)
}

/// Split `0..n` into up to `workers` contiguous, ascending, non-empty
/// ranges. Concatenating per-range outputs in order reproduces the
/// sequential row order.
pub(crate) fn worker_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    let w = workers.max(1).min(n.max(1));
    let per = n.div_ceil(w).max(1);
    (0..w)
        .map(|i| (i * per).min(n)..((i + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Run `f` over each range on its own scoped thread (inline when there is
/// only one range) and return the outputs in range order.
pub(crate) fn run_workers<T, F>(ranges: Vec<Range<usize>>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel operator worker panicked"))
            .collect()
    })
}

/// [`run_workers`] with a cancellation check at every morsel boundary:
/// each worker polls `cancel` before starting its range and substitutes
/// `empty(&range)` — a structurally-valid zero-work output — once the
/// token has tripped. Output arity and order are preserved, so downstream
/// code never sees a shape it could not have seen anyway; the *content* of
/// a cancelled stage is garbage by design, and the stage boundary in
/// `Query::try_run_with` discards it by surfacing the abort as an error.
pub(crate) fn run_workers_guarded<T, F, G>(
    cancel: &CancelToken,
    ranges: Vec<Range<usize>>,
    f: F,
    empty: G,
) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
    G: Fn(&Range<usize>) -> T + Sync,
{
    run_workers(ranges, |r| {
        if cancel.is_cancelled() {
            empty(&r)
        } else {
            f(r)
        }
    })
}

/// Gather `rows` of `chunk` into a new chunk, column-at-a-time — the
/// shared materialization for join outputs and sorted results.
pub(crate) fn gather_rows(chunk: &Chunk, rows: &[u32]) -> Chunk {
    let mut out = Chunk::empty(chunk.width());
    for (c, col) in chunk.columns.iter().enumerate() {
        out.columns[c] = rows.iter().map(|&i| col[i as usize].clone()).collect();
    }
    out
}

/// Morsel-parallel [`gather_rows`]: workers gather contiguous slices of the
/// row list and the sub-chunks concatenate in range order, so the output is
/// identical to the sequential gather at every thread count.
pub(crate) fn gather_rows_par(chunk: &Chunk, rows: &[u32], threads: usize) -> Chunk {
    if threads <= 1 || rows.len() < PAR_MIN_ROWS {
        return gather_rows(chunk, rows);
    }
    let parts = run_workers(worker_ranges(rows.len(), threads), |r| {
        gather_rows(chunk, &rows[r])
    });
    let mut out = Chunk::empty(chunk.width());
    for part in parts {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn ranges_cover_exactly_once_in_order() {
        for n in [0usize, 1, 7, 64, 1000] {
            for w in [1usize, 2, 3, 8, 200] {
                let ranges = worker_ranges(n, w);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} w={w}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn workers_preserve_range_order() {
        let out = run_workers(worker_ranges(100, 8), |r| r.sum::<usize>());
        assert_eq!(out.iter().sum::<usize>(), (0..100).sum::<usize>());
        let single = run_workers(worker_ranges(100, 1), |r| r.sum::<usize>());
        assert_eq!(single, vec![(0..100).sum::<usize>()]);
    }

    #[test]
    fn parallel_gather_matches_sequential() {
        let chunk = Chunk {
            columns: vec![
                (0..1000).map(Scalar::Int).collect(),
                (0..1000).map(|i| Scalar::str(format!("s{i}"))).collect(),
            ],
        };
        let rows: Vec<u32> = (0..1000u32).rev().filter(|i| i % 3 != 0).collect();
        let seq = gather_rows(&chunk, &rows);
        for threads in [1usize, 2, 8] {
            let par = gather_rows_par(&chunk, &rows, threads);
            assert_eq!(par.rows(), seq.rows(), "t={threads}");
            for c in 0..seq.width() {
                assert_eq!(par.columns[c], seq.columns[c], "t={threads} col {c}");
            }
        }
    }

    #[test]
    fn partition_is_stable_and_in_range() {
        for key in [&b"abc"[..], b"", b"longer key bytes"] {
            let p = partition_of(key_hash(key));
            assert!(p < PARTITIONS);
            assert_eq!(p, partition_of(key_hash(key)));
        }
    }
}
