//! Per-query execution profiles — the data behind `EXPLAIN ANALYZE`.
//!
//! The executor fills one [`ExecProfile`] per query: a [`ScanProfile`] per
//! table (tile skip/scan decisions with their evidence, first-touch row
//! attribution, wall time), a [`JoinProfile`] per join step (build/probe
//! sizes, output cardinality), and a [`StageProfile`] per post-join stage
//! (post-filter, aggregation, having, select, order by, limit). Collection
//! is always on: everything here is per-operator counters and `Instant`
//! pairs at per-query granularity, far off any per-row path. Publication to
//! the global [`jt_obs`] registry is gated on [`jt_obs::enabled`].

use crate::scan::ScanStats;
use std::fmt::Write as _;
use std::time::Duration;

/// One table scan of a query.
#[derive(Debug, Clone, Default)]
pub struct ScanProfile {
    /// Table label from the query builder.
    pub table: String,
    /// Rows in the relation before skipping and filtering.
    pub rows_total: usize,
    /// Planner cardinality estimate for this scan (§4.6 static document
    /// sampling), for estimated-vs-actual comparison. 0 when unavailable.
    pub estimated_rows: f64,
    /// Tile and row counters (see [`ScanStats`] for the identities).
    pub stats: ScanStats,
    /// Scan wall time, including skip tests and materialization.
    pub wall: Duration,
}

/// One join step, in execution order.
#[derive(Debug, Clone, Default)]
pub struct JoinProfile {
    /// Left key slot name.
    pub left: String,
    /// Right key slot name.
    pub right: String,
    /// `"inner"`, `"semi"`, `"anti"`, `"filter"` (same-component equality),
    /// or `"cross"` (disconnected components).
    pub kind: &'static str,
    /// Rows on the hash-build side.
    pub build_rows: usize,
    /// Rows on the probe side.
    pub probe_rows: usize,
    /// Output rows.
    pub rows_out: usize,
    /// Planner output-cardinality estimate (`|A|·|B| / max(nd)`), for
    /// estimated-vs-actual comparison. 0 when unavailable (semi/anti/cross
    /// steps and same-component filters are not estimated).
    pub estimated_out: f64,
    /// Join wall time.
    pub wall: Duration,
    /// Hash partitions used (1 when the sequential fallback ran, 0 for
    /// join kinds that never partition: `"filter"` and `"cross"`).
    pub partitions: usize,
    /// Worker threads used (0 for non-partitioned join kinds).
    pub threads: usize,
    /// Wall time of the partition + build phases.
    pub build_wall: Duration,
    /// Wall time of the parallel probe phase.
    pub probe_wall: Duration,
}

/// One post-join stage (only stages the query actually has are recorded).
#[derive(Debug, Clone, Default)]
pub struct StageProfile {
    /// Stage name: `"post-filter"`, `"aggregate"`, `"having"`, `"select"`,
    /// `"order-by"`, `"top-k"` (an ORDER BY whose LIMIT took the
    /// bounded-heap path), `"limit"`.
    pub name: &'static str,
    /// Rows leaving the stage.
    pub rows_out: usize,
    /// Stage wall time.
    pub wall: Duration,
    /// Worker threads used (0 for `"limit"`, which always runs
    /// sequentially).
    pub threads: usize,
    /// `"aggregate"`: hash partitions; `"order-by"`/`"top-k"`: sorted runs
    /// or per-worker candidate heaps merged. 0 for every other stage, 1
    /// when a sequential fallback ran.
    pub partitions: usize,
    /// `"aggregate"`: wall time of the parallel argument-eval phase.
    /// `"order-by"`/`"top-k"`: wall time of the parallel key-encode +
    /// run-sort (or bounded-heap) phase.
    pub eval_wall: Duration,
    /// `"aggregate"` only: wall time of the partition-parallel
    /// accumulation phase.
    pub accumulate_wall: Duration,
    /// `"aggregate"`: wall time of the deterministic final merge.
    /// `"order-by"`/`"top-k"`: wall time of the k-way merge + gather.
    pub merge_wall: Duration,
}

/// The full `EXPLAIN ANALYZE` record of one executed query.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Per-table scans, in declaration order.
    pub scans: Vec<ScanProfile>,
    /// Joins, in the order the executor ran them.
    pub joins: Vec<JoinProfile>,
    /// Post-join stages, in execution order.
    pub stages: Vec<StageProfile>,
    /// End-to-end execution wall time.
    pub total: Duration,
    /// Rows in the final result.
    pub rows_out: usize,
}

impl ExecProfile {
    /// Scan stats summed over all tables (equals `ResultSet::scan_stats`).
    pub fn scan_totals(&self) -> ScanStats {
        let mut s = ScanStats::default();
        for p in &self.scans {
            s.merge(&p.stats);
        }
        s
    }

    /// Serialize as the `jt-exec-profile/v1` JSON document: the machine
    /// form of [`ExecProfile::render`], embedded in query traces so
    /// operator-level detail rides along with every logged query.
    /// One line, durations in nanoseconds, scan stats flattened.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"schema\":\"jt-exec-profile/v1\",\"total_ns\":{},\"rows_out\":{},\"scans\":[",
            ns(self.total),
            self.rows_out
        );
        for (i, p) in self.scans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &p.stats;
            out.push_str("{\"table\":");
            json_str(&mut out, &p.table);
            let _ = write!(
                out,
                ",\"rows_total\":{},\"estimated_rows\":{},\"wall_ns\":{},\
                 \"tiles_total\":{},\"tiles_scanned\":{},\"tiles_skipped\":{},\
                 \"skipped_header_stats\":{},\"skipped_bloom\":{},\"skipped_bound\":{},\
                 \"rows_scanned\":{},\"rows_kernel\":{},\"rows_batched\":{},\
                 \"rows_exact\":{},\"rows_passthrough\":{},\"rows_out\":{}}}",
                p.rows_total,
                p.estimated_rows,
                ns(p.wall),
                s.total_tiles,
                s.scanned_tiles,
                s.skipped_tiles,
                s.skipped_header_stats,
                s.skipped_bloom,
                s.skipped_bound,
                s.rows_scanned,
                s.rows_kernel,
                s.rows_batched,
                s.rows_exact,
                s.rows_passthrough,
                s.rows_out,
            );
        }
        out.push_str("],\"joins\":[");
        for (i, j) in self.joins.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"left\":");
            json_str(&mut out, &j.left);
            out.push_str(",\"right\":");
            json_str(&mut out, &j.right);
            let _ = write!(
                out,
                ",\"kind\":\"{}\",\"build_rows\":{},\"probe_rows\":{},\"rows_out\":{},\
                 \"estimated_out\":{},\"wall_ns\":{},\"partitions\":{},\"threads\":{},\
                 \"build_wall_ns\":{},\"probe_wall_ns\":{}}}",
                j.kind,
                j.build_rows,
                j.probe_rows,
                j.rows_out,
                j.estimated_out,
                ns(j.wall),
                j.partitions,
                j.threads,
                ns(j.build_wall),
                ns(j.probe_wall),
            );
        }
        out.push_str("],\"stages\":[");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"rows_out\":{},\"wall_ns\":{},\"threads\":{},\
                 \"partitions\":{},\"eval_wall_ns\":{},\"accumulate_wall_ns\":{},\
                 \"merge_wall_ns\":{}}}",
                st.name,
                st.rows_out,
                ns(st.wall),
                st.threads,
                st.partitions,
                ns(st.eval_wall),
                ns(st.accumulate_wall),
                ns(st.merge_wall),
            );
        }
        out.push_str("]}");
        out
    }

    /// Render the per-operator tree the `EXPLAIN ANALYZE` front ends print.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for p in &self.scans {
            let s = &p.stats;
            let mut skip = String::new();
            if s.skipped_tiles > 0 {
                let bound = if s.skipped_bound > 0 {
                    format!(", {} bound", s.skipped_bound)
                } else {
                    String::new()
                };
                skip = format!(
                    " ({} skipped: {} header-stats, {} bloom{})",
                    s.skipped_tiles, s.skipped_header_stats, s.skipped_bloom, bound
                );
            }
            let mut attr: Vec<String> = Vec::new();
            for (n, label) in [
                (s.rows_kernel, "kernel"),
                (s.rows_batched, "batched"),
                (s.rows_exact, "exact"),
                (s.rows_passthrough, "passthrough"),
            ] {
                if n > 0 {
                    attr.push(format!("{n} {label}"));
                }
            }
            let attr = if attr.is_empty() {
                String::new()
            } else {
                format!(" ({})", attr.join(", "))
            };
            let est = if p.estimated_rows > 0.0 {
                format!(" (est {:.0})", p.estimated_rows)
            } else {
                String::new()
            };
            lines.push(format!(
                "scan {}: {}/{} tiles scanned{}, {} rows scanned{}, {} out{} [{}]",
                p.table,
                s.scanned_tiles,
                s.total_tiles,
                skip,
                s.rows_scanned,
                attr,
                s.rows_out,
                est,
                fmt_wall(p.wall),
            ));
        }
        for j in &self.joins {
            let par = if j.partitions > 0 {
                format!(
                    " (p={}, t={}, build {}, probe {})",
                    j.partitions,
                    j.threads,
                    fmt_wall(j.build_wall),
                    fmt_wall(j.probe_wall),
                )
            } else {
                String::new()
            };
            let est = if j.estimated_out > 0.0 {
                format!(" (est {:.0})", j.estimated_out)
            } else {
                String::new()
            };
            lines.push(format!(
                "join {} = {} ({}): build {} x probe {} -> {} rows{}{} [{}]",
                j.left,
                j.right,
                j.kind,
                j.build_rows,
                j.probe_rows,
                j.rows_out,
                est,
                par,
                fmt_wall(j.wall),
            ));
        }
        for st in &self.stages {
            let sort_stage = st.name == "order-by" || st.name == "top-k";
            let par = if st.partitions > 0 && sort_stage {
                format!(
                    " (runs={}, t={}, sort {}, merge {})",
                    st.partitions,
                    st.threads,
                    fmt_wall(st.eval_wall),
                    fmt_wall(st.merge_wall),
                )
            } else if st.partitions > 0 {
                format!(
                    " (p={}, t={}, eval {}, accumulate {}, merge {})",
                    st.partitions,
                    st.threads,
                    fmt_wall(st.eval_wall),
                    fmt_wall(st.accumulate_wall),
                    fmt_wall(st.merge_wall),
                )
            } else if st.threads > 1 {
                format!(" (t={})", st.threads)
            } else {
                String::new()
            };
            lines.push(format!(
                "{}: {} rows{} [{}]",
                st.name,
                st.rows_out,
                par,
                fmt_wall(st.wall)
            ));
        }
        let mut out = format!(
            "EXPLAIN ANALYZE (total {}, {} rows)\n",
            fmt_wall(self.total),
            self.rows_out
        );
        for (i, line) in lines.iter().enumerate() {
            let branch = if i + 1 == lines.len() { "`- " } else { "|- " };
            out.push_str(branch);
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Saturating nanoseconds of a duration (JSON export).
fn ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Append `s` as a JSON string literal (table labels may contain
/// arbitrary user-supplied names).
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Human wall-time formatting with a unit that keeps 3 significant digits.
fn fmt_wall(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_scans_joins_and_stages() {
        let profile = ExecProfile {
            scans: vec![ScanProfile {
                table: "orders".into(),
                rows_total: 4096,
                estimated_rows: 120.0,
                stats: ScanStats {
                    total_tiles: 4,
                    scanned_tiles: 3,
                    skipped_tiles: 1,
                    skipped_header_stats: 1,
                    rows_scanned: 3072,
                    rows_kernel: 3000,
                    rows_exact: 72,
                    rows_out: 100,
                    ..ScanStats::default()
                },
                wall: Duration::from_micros(420),
            }],
            joins: vec![JoinProfile {
                left: "o_id".into(),
                right: "l_id".into(),
                kind: "inner",
                build_rows: 100,
                probe_rows: 900,
                rows_out: 250,
                estimated_out: 240.0,
                wall: Duration::from_micros(80),
                partitions: 64,
                threads: 4,
                build_wall: Duration::from_micros(30),
                probe_wall: Duration::from_micros(45),
            }],
            stages: vec![StageProfile {
                name: "aggregate",
                rows_out: 7,
                wall: Duration::from_micros(15),
                threads: 4,
                partitions: 64,
                eval_wall: Duration::from_micros(6),
                accumulate_wall: Duration::from_micros(5),
                merge_wall: Duration::from_micros(2),
            }],
            total: Duration::from_micros(600),
            rows_out: 7,
        };
        let text = profile.render();
        assert!(text.starts_with("EXPLAIN ANALYZE (total 600.00 us, 7 rows)"));
        assert!(
            text.contains("scan orders: 3/4 tiles scanned (1 skipped: 1 header-stats, 0 bloom)")
        );
        assert!(text.contains("3072 rows scanned (3000 kernel, 72 exact)"));
        assert!(text.contains("100 out (est 120)"));
        assert!(text.contains("join o_id = l_id (inner): build 100 x probe 900 -> 250 rows"));
        assert!(text.contains("250 rows (est 240) (p=64, t=4, build 30.00 us, probe 45.00 us)"));
        assert!(text.contains("`- aggregate: 7 rows"));
        assert!(
            text.contains("7 rows (p=64, t=4, eval 6.00 us, accumulate 5.00 us, merge 2.00 us)")
        );
    }

    #[test]
    fn render_shows_sort_runs_and_merge() {
        let profile = ExecProfile {
            stages: vec![
                StageProfile {
                    name: "order-by",
                    rows_out: 1000,
                    wall: Duration::from_micros(90),
                    threads: 4,
                    partitions: 4,
                    eval_wall: Duration::from_micros(60),
                    merge_wall: Duration::from_micros(25),
                    ..StageProfile::default()
                },
                StageProfile {
                    name: "top-k",
                    rows_out: 10,
                    wall: Duration::from_micros(40),
                    threads: 2,
                    partitions: 2,
                    eval_wall: Duration::from_micros(30),
                    merge_wall: Duration::from_micros(5),
                    ..StageProfile::default()
                },
            ],
            rows_out: 10,
            ..ExecProfile::default()
        };
        let text = profile.render();
        assert!(
            text.contains("order-by: 1000 rows (runs=4, t=4, sort 60.00 us, merge 25.00 us)"),
            "sort stage rendering:\n{text}"
        );
        assert!(
            text.contains("top-k: 10 rows (runs=2, t=2, sort 30.00 us, merge 5.00 us)"),
            "top-k stage rendering:\n{text}"
        );
        assert!(
            !text.contains("accumulate"),
            "sort stages have no accumulate phase"
        );
    }

    #[test]
    fn render_omits_parallel_detail_when_unset() {
        let profile = ExecProfile {
            joins: vec![JoinProfile {
                left: "a".into(),
                right: "b".into(),
                kind: "cross",
                build_rows: 2,
                probe_rows: 3,
                rows_out: 6,
                ..JoinProfile::default()
            }],
            stages: vec![StageProfile {
                name: "order-by",
                rows_out: 6,
                ..StageProfile::default()
            }],
            rows_out: 6,
            ..ExecProfile::default()
        };
        let text = profile.render();
        assert!(text.contains("join a = b (cross): build 2 x probe 3 -> 6 rows ["));
        assert!(text.contains("`- order-by: 6 rows ["));
        assert!(!text.contains("(p="));
        assert!(!text.contains("(t="));
    }

    #[test]
    fn to_json_serializes_all_operator_kinds() {
        let profile = ExecProfile {
            scans: vec![ScanProfile {
                table: "or\"ders".into(),
                rows_total: 4096,
                estimated_rows: 120.0,
                stats: ScanStats {
                    total_tiles: 4,
                    scanned_tiles: 3,
                    skipped_tiles: 1,
                    skipped_header_stats: 1,
                    rows_scanned: 3072,
                    rows_kernel: 3000,
                    rows_exact: 72,
                    rows_out: 100,
                    ..ScanStats::default()
                },
                wall: Duration::from_micros(420),
            }],
            joins: vec![JoinProfile {
                left: "o_id".into(),
                right: "l_id".into(),
                kind: "inner",
                build_rows: 100,
                probe_rows: 900,
                rows_out: 250,
                estimated_out: 240.0,
                wall: Duration::from_micros(80),
                partitions: 64,
                threads: 4,
                build_wall: Duration::from_micros(30),
                probe_wall: Duration::from_micros(45),
            }],
            stages: vec![StageProfile {
                name: "aggregate",
                rows_out: 7,
                wall: Duration::from_micros(15),
                threads: 4,
                partitions: 64,
                eval_wall: Duration::from_micros(6),
                accumulate_wall: Duration::from_micros(5),
                merge_wall: Duration::from_micros(2),
            }],
            total: Duration::from_micros(600),
            rows_out: 7,
        };
        let j = profile.to_json();
        assert!(!j.contains('\n'), "single line");
        assert!(j.starts_with("{\"schema\":\"jt-exec-profile/v1\",\"total_ns\":600000"));
        assert!(j.contains("\"table\":\"or\\\"ders\""), "escaped: {j}");
        assert!(j.contains("\"estimated_rows\":120"));
        assert!(j.contains("\"rows_kernel\":3000"));
        assert!(j.contains("\"kind\":\"inner\""));
        assert!(j.contains("\"probe_wall_ns\":45000"));
        assert!(j.contains("\"name\":\"aggregate\""));
        assert!(j.contains("\"accumulate_wall_ns\":5000"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced: {j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn scan_totals_sum_tables() {
        let mut p = ExecProfile::default();
        for rows in [10u64, 20] {
            p.scans.push(ScanProfile {
                stats: ScanStats {
                    rows_scanned: rows,
                    total_tiles: 1,
                    scanned_tiles: 1,
                    ..ScanStats::default()
                },
                ..ScanProfile::default()
            });
        }
        let t = p.scan_totals();
        assert_eq!(t.rows_scanned, 30);
        assert_eq!(t.total_tiles, 2);
    }

    #[test]
    fn wall_formatting_units() {
        assert_eq!(fmt_wall(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_wall(Duration::from_micros(5)), "5.00 us");
        assert_eq!(fmt_wall(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_wall(Duration::from_secs(2)), "2.00 s");
    }
}
