//! Hash aggregation (group-by) with the standard SQL aggregate functions.

use crate::expr::Expr;
use crate::scalar::Scalar;
use crate::Chunk;
use std::collections::HashMap;

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)` — counts rows, nulls included (§4.8 explains why this
    /// forbids naive null-skipping).
    CountStar,
    /// `COUNT(expr)` — counts non-null values.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `COUNT(DISTINCT expr)`.
    CountDistinct,
}

/// One aggregate: a function over an expression.
#[derive(Debug, Clone)]
pub struct Agg {
    /// The function.
    pub kind: AggKind,
    /// Its argument (ignored for `COUNT(*)`).
    pub expr: Expr,
}

impl Agg {
    /// `COUNT(*)`
    pub fn count_star() -> Agg {
        Agg {
            kind: AggKind::CountStar,
            expr: Expr::Const(Scalar::Null),
        }
    }
    /// `COUNT(e)`
    pub fn count(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Count,
            expr: e,
        }
    }
    /// `SUM(e)`
    pub fn sum(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Sum,
            expr: e,
        }
    }
    /// `AVG(e)`
    pub fn avg(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Avg,
            expr: e,
        }
    }
    /// `MIN(e)`
    pub fn min(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Min,
            expr: e,
        }
    }
    /// `MAX(e)`
    pub fn max(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Max,
            expr: e,
        }
    }
    /// `COUNT(DISTINCT e)`
    pub fn count_distinct(e: Expr) -> Agg {
        Agg {
            kind: AggKind::CountDistinct,
            expr: e,
        }
    }
}

#[derive(Debug)]
enum Acc {
    Count(i64),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Avg(f64, i64),
    MinMax(Scalar, bool),
    Distinct(std::collections::HashSet<Vec<u8>>),
}

impl Acc {
    fn new(kind: AggKind, is_min: bool) -> Acc {
        match kind {
            AggKind::CountStar | AggKind::Count => Acc::Count(0),
            AggKind::Sum => Acc::SumInt(0, false),
            AggKind::Avg => Acc::Avg(0.0, 0),
            AggKind::Min | AggKind::Max => Acc::MinMax(Scalar::Null, is_min),
            AggKind::CountDistinct => Acc::Distinct(std::collections::HashSet::new()),
        }
    }

    fn update(&mut self, kind: AggKind, v: Scalar) {
        match (self, kind) {
            (Acc::Count(c), AggKind::CountStar) => *c += 1,
            (Acc::Count(c), _) => {
                if !v.is_null() {
                    *c += 1;
                }
            }
            (acc @ Acc::SumInt(..), _) => {
                if v.is_null() {
                    return;
                }
                // Integer sums stay integer; a float input upgrades the
                // accumulator permanently.
                if let Acc::SumInt(total, seen) = acc {
                    match v {
                        Scalar::Int(i) => {
                            *total += i;
                            *seen = true;
                        }
                        other => {
                            let f = *total as f64 + other.as_f64().unwrap_or(0.0);
                            *acc = Acc::SumFloat(f, true);
                        }
                    }
                }
            }
            (Acc::SumFloat(total, seen), _) => {
                if let Some(f) = v.as_f64() {
                    *total += f;
                    *seen = true;
                }
            }
            (Acc::Avg(total, n), _) => {
                if let Some(f) = v.as_f64() {
                    *total += f;
                    *n += 1;
                }
            }
            (Acc::MinMax(cur, is_min), _) => {
                if v.is_null() {
                    return;
                }
                let replace = match cur.compare(&v) {
                    None => cur.is_null(),
                    Some(ord) => {
                        if *is_min {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        }
                    }
                };
                if replace {
                    *cur = v;
                }
            }
            (Acc::Distinct(set), _) => {
                if !v.is_null() {
                    let mut key = Vec::new();
                    v.write_key(&mut key);
                    set.insert(key);
                }
            }
        }
    }

    fn finish(self) -> Scalar {
        match self {
            Acc::Count(c) => Scalar::Int(c),
            Acc::SumInt(total, seen) => {
                if seen {
                    Scalar::Int(total)
                } else {
                    Scalar::Null
                }
            }
            Acc::SumFloat(total, seen) => {
                if seen {
                    Scalar::Float(total)
                } else {
                    Scalar::Null
                }
            }
            Acc::Avg(total, n) => {
                if n == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float(total / n as f64)
                }
            }
            Acc::MinMax(cur, _) => cur,
            Acc::Distinct(set) => Scalar::Int(set.len() as i64),
        }
    }
}

/// One hash-table entry: the group's key scalars plus its accumulators.
type GroupEntry = (Vec<Scalar>, Vec<Acc>);

/// Group `input` by the key expressions and compute the aggregates.
/// Output columns: keys first, then one per aggregate. With no keys, a
/// single global group is produced even for empty input (SQL semantics).
pub fn group_aggregate(input: &Chunk, keys: &[Expr], aggs: &[Agg]) -> Chunk {
    let new_accs = || -> Vec<Acc> {
        aggs.iter()
            .map(|a| Acc::new(a.kind, a.kind == AggKind::Min))
            .collect()
    };
    // Global aggregates skip the hash table entirely: one accumulator row.
    if keys.is_empty() {
        let mut accs = new_accs();
        for row in 0..input.rows() {
            for (acc, agg) in accs.iter_mut().zip(aggs) {
                let v = match agg.kind {
                    AggKind::CountStar => Scalar::Null,
                    _ => agg.expr.eval(input, row),
                };
                acc.update(agg.kind, v);
            }
        }
        let mut out = Chunk::empty(aggs.len());
        for (c, acc) in accs.into_iter().enumerate() {
            out.columns[c].push(acc.finish());
        }
        return out;
    }
    let mut groups: HashMap<Vec<u8>, GroupEntry> = HashMap::new();
    // The scratch key buffer is reused across rows; the key bytes (and the
    // key scalars) are only cloned when a row opens a new group, so the
    // common repeated-group case allocates nothing.
    let mut keybuf = Vec::new();
    let mut key_vals: Vec<Scalar> = Vec::new();
    for row in 0..input.rows() {
        key_vals.clear();
        key_vals.extend(keys.iter().map(|k| k.eval(input, row)));
        keybuf.clear();
        for v in &key_vals {
            v.write_key(&mut keybuf);
        }
        if !groups.contains_key(&keybuf) {
            groups.insert(keybuf.clone(), (key_vals.clone(), new_accs()));
        }
        let entry = groups.get_mut(&keybuf).expect("group just ensured");
        for (acc, agg) in entry.1.iter_mut().zip(aggs) {
            let v = match agg.kind {
                AggKind::CountStar => Scalar::Null,
                _ => agg.expr.eval(input, row),
            };
            acc.update(agg.kind, v);
        }
    }
    let mut out = Chunk::empty(keys.len() + aggs.len());
    // Deterministic output order: sort by the canonical key bytes.
    let mut entries: Vec<(Vec<u8>, GroupEntry)> = groups.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, (key_vals, accs)) in entries {
        for (c, v) in key_vals.into_iter().enumerate() {
            out.columns[c].push(v);
        }
        for (c, acc) in accs.into_iter().enumerate() {
            out.columns[keys.len() + c].push(acc.finish());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;

    fn input() -> Chunk {
        Chunk {
            columns: vec![
                // group keys
                vec![
                    Scalar::str("a"),
                    Scalar::str("b"),
                    Scalar::str("a"),
                    Scalar::str("a"),
                ],
                // values with a null
                vec![
                    Scalar::Int(1),
                    Scalar::Int(10),
                    Scalar::Null,
                    Scalar::Int(3),
                ],
            ],
        }
    }

    fn slot(i: usize) -> Expr {
        Expr::Slot(i)
    }

    #[test]
    fn grouped_aggregates() {
        let out = group_aggregate(
            &input(),
            &[slot(0)],
            &[
                Agg::count_star(),
                Agg::count(slot(1)),
                Agg::sum(slot(1)),
                Agg::min(slot(1)),
                Agg::max(slot(1)),
                Agg::avg(slot(1)),
            ],
        );
        assert_eq!(out.rows(), 2);
        let a_row = (0..2)
            .find(|&i| out.get(i, 0).as_str() == Some("a"))
            .unwrap();
        assert_eq!(
            out.get(a_row, 1).as_i64(),
            Some(3),
            "count(*) includes null rows"
        );
        assert_eq!(out.get(a_row, 2).as_i64(), Some(2), "count(v) skips nulls");
        assert_eq!(out.get(a_row, 3).as_i64(), Some(4), "sum");
        assert_eq!(out.get(a_row, 4).as_i64(), Some(1), "min");
        assert_eq!(out.get(a_row, 5).as_i64(), Some(3), "max");
        assert_eq!(out.get(a_row, 6).as_f64(), Some(2.0), "avg skips nulls");
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let empty = Chunk::empty(2);
        let out = group_aggregate(&empty, &[], &[Agg::count_star(), Agg::sum(slot(1))]);
        assert_eq!(out.rows(), 1);
        assert_eq!(out.get(0, 0).as_i64(), Some(0));
        assert!(out.get(0, 1).is_null(), "SUM of nothing is null");
    }

    #[test]
    fn grouped_on_empty_input_is_empty() {
        let empty = Chunk::empty(2);
        let out = group_aggregate(&empty, &[slot(0)], &[Agg::count_star()]);
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn sum_type_promotion() {
        let c = Chunk {
            columns: vec![vec![Scalar::Int(1), Scalar::Float(2.5), Scalar::Int(3)]],
        };
        let out = group_aggregate(&c, &[], &[Agg::sum(slot(0))]);
        assert_eq!(out.get(0, 0).as_f64(), Some(6.5));
        let c = Chunk {
            columns: vec![vec![Scalar::Int(1), Scalar::Int(2)]],
        };
        let out = group_aggregate(&c, &[], &[Agg::sum(slot(0))]);
        assert!(
            matches!(out.get(0, 0), Scalar::Int(3)),
            "pure int sum stays int"
        );
    }

    #[test]
    fn count_distinct() {
        let c = Chunk {
            columns: vec![vec![
                Scalar::Int(1),
                Scalar::Int(1),
                Scalar::Int(2),
                Scalar::Null,
                Scalar::Float(2.0),
            ]],
        };
        let out = group_aggregate(&c, &[], &[Agg::count_distinct(slot(0))]);
        assert_eq!(
            out.get(0, 0).as_i64(),
            Some(2),
            "1, 2 (2.0 == 2; null skipped)"
        );
    }

    #[test]
    fn null_group_key_forms_group() {
        let c = Chunk {
            columns: vec![
                vec![Scalar::Null, Scalar::Null, Scalar::Int(1)],
                vec![Scalar::Int(5), Scalar::Int(6), Scalar::Int(7)],
            ],
        };
        let out = group_aggregate(&c, &[slot(0)], &[Agg::sum(slot(1))]);
        assert_eq!(out.rows(), 2, "null key is one group");
        let null_row = (0..2).find(|&i| out.get(i, 0).is_null()).unwrap();
        assert_eq!(out.get(null_row, 1).as_i64(), Some(11));
    }

    #[test]
    fn computed_keys_and_args() {
        let c = Chunk {
            columns: vec![vec![
                Scalar::Int(1),
                Scalar::Int(2),
                Scalar::Int(3),
                Scalar::Int(4),
            ]],
        };
        // Group by v % 2 (emulated via v - (v/2)*2 with int div... use cmp).
        let out = group_aggregate(&c, &[slot(0).gt(lit(2))], &[Agg::sum(slot(0).mul(lit(10)))]);
        assert_eq!(out.rows(), 2);
        let hi = (0..2)
            .find(|&i| out.get(i, 0).as_bool() == Some(true))
            .unwrap();
        assert_eq!(out.get(hi, 1).as_i64(), Some(70));
    }
}
