//! Hash aggregation (group-by) with the standard SQL aggregate functions.
//!
//! [`group_aggregate`] is the single-threaded oracle. The morsel-driven
//! [`group_aggregate_par`] must be bit-identical to it at every thread
//! count — including float aggregates, whose value depends on accumulation
//! *order* (`f64` addition is not associative). Naively merging per-thread
//! partial sums would change the result in the last ulp, so the parallel
//! operator never merges accumulators across rows of the same group.
//! Instead it splits the work so each group's accumulator still sees its
//! rows in global row order:
//!
//! 1. **Eval phase** (morsel-parallel): key expressions, canonical key
//!    bytes, key hashes, and aggregate arguments are computed per row over
//!    contiguous worker ranges — the expensive, trivially-parallel part.
//! 2. **Accumulate phase** (partition-parallel): groups are hash-partitioned
//!    by key; each worker owns a set of partitions and drains the eval
//!    parts in range order, so every group's updates happen in ascending
//!    global row order on exactly one thread.
//! 3. **Merge phase**: partitions hold disjoint key sets, so the final
//!    merge is a concatenation sorted by canonical key bytes — the same
//!    deterministic group order the oracle produces.

use crate::cancel::CancelToken;
use crate::expr::Expr;
use crate::par::{
    key_hash, partition_of, run_workers_guarded, worker_ranges, PARTITIONS, PAR_MIN_ROWS,
};
use crate::scalar::Scalar;
use crate::Chunk;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)` — counts rows, nulls included (§4.8 explains why this
    /// forbids naive null-skipping).
    CountStar,
    /// `COUNT(expr)` — counts non-null values.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `COUNT(DISTINCT expr)`.
    CountDistinct,
}

/// One aggregate: a function over an expression.
#[derive(Debug, Clone)]
pub struct Agg {
    /// The function.
    pub kind: AggKind,
    /// Its argument (ignored for `COUNT(*)`).
    pub expr: Expr,
}

impl Agg {
    /// `COUNT(*)`
    pub fn count_star() -> Agg {
        Agg {
            kind: AggKind::CountStar,
            expr: Expr::Const(Scalar::Null),
        }
    }
    /// `COUNT(e)`
    pub fn count(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Count,
            expr: e,
        }
    }
    /// `SUM(e)`
    pub fn sum(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Sum,
            expr: e,
        }
    }
    /// `AVG(e)`
    pub fn avg(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Avg,
            expr: e,
        }
    }
    /// `MIN(e)`
    pub fn min(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Min,
            expr: e,
        }
    }
    /// `MAX(e)`
    pub fn max(e: Expr) -> Agg {
        Agg {
            kind: AggKind::Max,
            expr: e,
        }
    }
    /// `COUNT(DISTINCT e)`
    pub fn count_distinct(e: Expr) -> Agg {
        Agg {
            kind: AggKind::CountDistinct,
            expr: e,
        }
    }
}

#[derive(Debug)]
enum Acc {
    Count(i64),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Avg(f64, i64),
    MinMax(Scalar, bool),
    Distinct(std::collections::HashSet<Vec<u8>>),
}

impl Acc {
    fn new(kind: AggKind, is_min: bool) -> Acc {
        match kind {
            AggKind::CountStar | AggKind::Count => Acc::Count(0),
            AggKind::Sum => Acc::SumInt(0, false),
            AggKind::Avg => Acc::Avg(0.0, 0),
            AggKind::Min | AggKind::Max => Acc::MinMax(Scalar::Null, is_min),
            AggKind::CountDistinct => Acc::Distinct(std::collections::HashSet::new()),
        }
    }

    fn update(&mut self, kind: AggKind, v: Scalar) {
        match (self, kind) {
            (Acc::Count(c), AggKind::CountStar) => *c += 1,
            (Acc::Count(c), _) => {
                if !v.is_null() {
                    *c += 1;
                }
            }
            (acc @ Acc::SumInt(..), _) => {
                if v.is_null() {
                    return;
                }
                // Integer sums stay integer; a float input upgrades the
                // accumulator permanently.
                if let Acc::SumInt(total, seen) = acc {
                    match v {
                        Scalar::Int(i) => {
                            *total += i;
                            *seen = true;
                        }
                        other => {
                            let f = *total as f64 + other.as_f64().unwrap_or(0.0);
                            *acc = Acc::SumFloat(f, true);
                        }
                    }
                }
            }
            (Acc::SumFloat(total, seen), _) => {
                if let Some(f) = v.as_f64() {
                    *total += f;
                    *seen = true;
                }
            }
            (Acc::Avg(total, n), _) => {
                if let Some(f) = v.as_f64() {
                    *total += f;
                    *n += 1;
                }
            }
            (Acc::MinMax(cur, is_min), _) => {
                if v.is_null() {
                    return;
                }
                let replace = match cur.compare(&v) {
                    None => cur.is_null(),
                    Some(ord) => {
                        if *is_min {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        }
                    }
                };
                if replace {
                    *cur = v;
                }
            }
            (Acc::Distinct(set), _) => {
                if !v.is_null() {
                    let mut key = Vec::new();
                    v.write_key(&mut key);
                    set.insert(key);
                }
            }
        }
    }

    fn finish(self) -> Scalar {
        match self {
            Acc::Count(c) => Scalar::Int(c),
            Acc::SumInt(total, seen) => {
                if seen {
                    Scalar::Int(total)
                } else {
                    Scalar::Null
                }
            }
            Acc::SumFloat(total, seen) => {
                if seen {
                    Scalar::Float(total)
                } else {
                    Scalar::Null
                }
            }
            Acc::Avg(total, n) => {
                if n == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float(total / n as f64)
                }
            }
            Acc::MinMax(cur, _) => cur,
            Acc::Distinct(set) => Scalar::Int(set.len() as i64),
        }
    }
}

/// One hash-table entry: the group's key scalars plus its accumulators.
type GroupEntry = (Vec<Scalar>, Vec<Acc>);

fn new_accs(aggs: &[Agg]) -> Vec<Acc> {
    aggs.iter()
        .map(|a| Acc::new(a.kind, a.kind == AggKind::Min))
        .collect()
}

/// Group `input` by the key expressions and compute the aggregates.
/// Output columns: keys first, then one per aggregate. With no keys, a
/// single global group is produced even for empty input (SQL semantics).
pub fn group_aggregate(input: &Chunk, keys: &[Expr], aggs: &[Agg]) -> Chunk {
    // Global aggregates skip the hash table entirely: one accumulator row.
    if keys.is_empty() {
        let mut accs = new_accs(aggs);
        for row in 0..input.rows() {
            for (acc, agg) in accs.iter_mut().zip(aggs) {
                let v = match agg.kind {
                    AggKind::CountStar => Scalar::Null,
                    _ => agg.expr.eval(input, row),
                };
                acc.update(agg.kind, v);
            }
        }
        let mut out = Chunk::empty(aggs.len());
        for (c, acc) in accs.into_iter().enumerate() {
            out.columns[c].push(acc.finish());
        }
        return out;
    }
    let mut groups: HashMap<Vec<u8>, GroupEntry> = HashMap::new();
    // The scratch key buffer is reused across rows; the key bytes (and the
    // key scalars) are only cloned when a row opens a new group, so the
    // common repeated-group case allocates nothing.
    let mut keybuf = Vec::new();
    let mut key_vals: Vec<Scalar> = Vec::new();
    for row in 0..input.rows() {
        key_vals.clear();
        key_vals.extend(keys.iter().map(|k| k.eval(input, row)));
        keybuf.clear();
        for v in &key_vals {
            v.write_key(&mut keybuf);
        }
        let update = |accs: &mut [Acc]| {
            for (acc, agg) in accs.iter_mut().zip(aggs) {
                let v = match agg.kind {
                    AggKind::CountStar => Scalar::Null,
                    _ => agg.expr.eval(input, row),
                };
                acc.update(agg.kind, v);
            }
        };
        // One lookup on the hot repeated-group path; key bytes and key
        // scalars are cloned only when the row opens a new group.
        if let Some(entry) = groups.get_mut(keybuf.as_slice()) {
            update(&mut entry.1);
        } else {
            let mut accs = new_accs(aggs);
            update(&mut accs);
            groups.insert(keybuf.clone(), (key_vals.clone(), accs));
        }
    }
    let mut out = Chunk::empty(keys.len() + aggs.len());
    // Deterministic output order: sort by the canonical key bytes.
    let mut entries: Vec<(Vec<u8>, GroupEntry)> = groups.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (_, (key_vals, accs)) in entries {
        for (c, v) in key_vals.into_iter().enumerate() {
            out.columns[c].push(v);
        }
        for (c, acc) in accs.into_iter().enumerate() {
            out.columns[keys.len() + c].push(acc.finish());
        }
    }
    out
}

/// Execution shape of one parallel aggregation: partition/thread counts and
/// per-phase wall times. Feeds the `aggregate` stage of the profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggExecStats {
    /// Hash partitions of the group table (1 on the sequential path).
    pub partitions: usize,
    /// Worker threads used (1 on the sequential path).
    pub threads: usize,
    /// Wall time of the morsel-parallel key/argument evaluation phase.
    pub eval_wall: Duration,
    /// Wall time of the partition-parallel accumulation phase.
    pub accumulate_wall: Duration,
    /// Wall time of the deterministic final merge (sort + emit).
    pub merge_wall: Duration,
}

/// One eval-phase worker's output: everything the accumulate phase needs,
/// indexed by worker-local row (`global row = range.start + local`).
struct EvalPart {
    /// Concatenated canonical key bytes.
    bytes: Vec<u8>,
    /// Per local row: `(offset, len)` into `bytes`.
    offs: Vec<(u32, u32)>,
    /// Evaluated key scalars, `nkeys` per local row.
    key_vals: Vec<Scalar>,
    /// Evaluated aggregate arguments, `naggs` per local row
    /// (`Scalar::Null` placeholders for `COUNT(*)`).
    args: Vec<Scalar>,
    /// Per hash partition: local rows that belong to it, ascending.
    buckets: Vec<Vec<u32>>,
}

/// Evaluate the aggregate arguments of `row` into `args`.
#[inline]
fn eval_args(input: &Chunk, row: usize, aggs: &[Agg], args: &mut Vec<Scalar>) {
    for agg in aggs {
        args.push(match agg.kind {
            AggKind::CountStar => Scalar::Null,
            _ => agg.expr.eval(input, row),
        });
    }
}

/// Morsel-driven parallel group-by. Bit-identical to [`group_aggregate`]
/// at every thread count: see the module docs for the ordering argument.
pub fn group_aggregate_par(
    input: &Chunk,
    keys: &[Expr],
    aggs: &[Agg],
    threads: usize,
) -> (Chunk, AggExecStats) {
    group_aggregate_par_cancellable(input, keys, aggs, threads, &CancelToken::none())
}

/// [`group_aggregate_par`] polling `cancel` at every morsel boundary (eval
/// morsels, accumulate partitions). A cancelled aggregation returns a
/// truncated result the caller must discard by checking the token.
pub fn group_aggregate_par_cancellable(
    input: &Chunk,
    keys: &[Expr],
    aggs: &[Agg],
    threads: usize,
    cancel: &CancelToken,
) -> (Chunk, AggExecStats) {
    let threads = threads.max(1);
    if threads == 1 || input.rows() < PAR_MIN_ROWS {
        let t = Instant::now();
        let out = if cancel.is_cancelled() {
            Chunk::empty(keys.len() + aggs.len())
        } else {
            group_aggregate(input, keys, aggs)
        };
        let stats = AggExecStats {
            partitions: 1,
            threads: 1,
            accumulate_wall: t.elapsed(),
            ..AggExecStats::default()
        };
        return (out, stats);
    }
    if keys.is_empty() {
        return global_aggregate_par(input, aggs, threads, cancel);
    }
    let naggs = aggs.len();
    let nkeys = keys.len();
    let empty_part = || EvalPart {
        bytes: Vec::new(),
        offs: Vec::new(),
        key_vals: Vec::new(),
        args: Vec::new(),
        buckets: vec![Vec::new(); PARTITIONS],
    };

    // Phase 1: evaluate keys and arguments morsel-parallel.
    let t_eval = Instant::now();
    let parts: Vec<EvalPart> = run_workers_guarded(
        cancel,
        worker_ranges(input.rows(), threads),
        |range| {
            let n = range.len();
            let mut part = EvalPart {
                offs: Vec::with_capacity(n),
                key_vals: Vec::with_capacity(n * nkeys),
                args: Vec::with_capacity(n * naggs),
                ..empty_part()
            };
            for (local, row) in range.enumerate() {
                let start = part.bytes.len();
                for k in keys {
                    let v = k.eval(input, row);
                    v.write_key(&mut part.bytes);
                    part.key_vals.push(v);
                }
                let len = part.bytes.len() - start;
                part.offs.push((start as u32, len as u32));
                let p = partition_of(key_hash(&part.bytes[start..]));
                part.buckets[p].push(local as u32);
                eval_args(input, row, aggs, &mut part.args);
            }
            part
        },
        |_| empty_part(),
    );
    let eval_wall = t_eval.elapsed();

    // Phase 2: accumulate partition-parallel. Each worker owns a disjoint
    // set of hash partitions and drains the eval parts in range order, so
    // every group's accumulator sees its rows in global row order.
    let t_acc = Instant::now();
    let tables: Vec<Vec<(&[u8], GroupEntry)>> = run_workers_guarded(
        cancel,
        worker_ranges(PARTITIONS, threads),
        |prange| {
            let mut out: Vec<(&[u8], GroupEntry)> = Vec::new();
            for p in prange {
                let mut table: HashMap<&[u8], GroupEntry> = HashMap::new();
                for part in &parts {
                    for &local in &part.buckets[p] {
                        let li = local as usize;
                        let (off, len) = part.offs[li];
                        let key = &part.bytes[off as usize..(off + len) as usize];
                        let entry = table.entry(key).or_insert_with(|| {
                            let kv = part.key_vals[li * nkeys..(li + 1) * nkeys].to_vec();
                            (kv, new_accs(aggs))
                        });
                        for (i, (acc, agg)) in entry.1.iter_mut().zip(aggs).enumerate() {
                            acc.update(agg.kind, part.args[li * naggs + i].clone());
                        }
                    }
                }
                out.extend(table);
            }
            out
        },
        |_| Vec::new(),
    );
    let accumulate_wall = t_acc.elapsed();

    // Phase 3: partitions hold disjoint keys, so the deterministic merge is
    // a flatten + sort by canonical key bytes — the oracle's group order.
    let t_merge = Instant::now();
    let mut entries: Vec<(&[u8], GroupEntry)> = tables.into_iter().flatten().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut out = Chunk::empty(nkeys + naggs);
    for (_, (key_vals, accs)) in entries {
        for (c, v) in key_vals.into_iter().enumerate() {
            out.columns[c].push(v);
        }
        for (c, acc) in accs.into_iter().enumerate() {
            out.columns[nkeys + c].push(acc.finish());
        }
    }
    let stats = AggExecStats {
        partitions: PARTITIONS,
        threads,
        eval_wall,
        accumulate_wall,
        merge_wall: t_merge.elapsed(),
    };
    (out, stats)
}

/// Global (keyless) aggregation: arguments are evaluated morsel-parallel —
/// the expensive part — and folded sequentially in global row order, which
/// keeps order-sensitive float sums bit-identical to the oracle. The single
/// accumulator row makes group partitioning useless here, and merging
/// per-morsel partial sums would break float bit-identity.
fn global_aggregate_par(
    input: &Chunk,
    aggs: &[Agg],
    threads: usize,
    cancel: &CancelToken,
) -> (Chunk, AggExecStats) {
    let naggs = aggs.len();
    if naggs == 0 {
        // Degenerate keyless, aggregate-less query: zero-width output.
        return (Chunk::empty(0), AggExecStats::default());
    }
    let t_eval = Instant::now();
    let parts: Vec<Vec<Scalar>> = run_workers_guarded(
        cancel,
        worker_ranges(input.rows(), threads),
        |range| {
            let mut args = Vec::with_capacity(range.len() * naggs);
            for row in range {
                eval_args(input, row, aggs, &mut args);
            }
            args
        },
        |_| Vec::new(),
    );
    let eval_wall = t_eval.elapsed();

    let t_acc = Instant::now();
    let mut accs = new_accs(aggs);
    for part in parts {
        for row_args in part.chunks_exact(naggs) {
            for (i, (acc, agg)) in accs.iter_mut().zip(aggs).enumerate() {
                acc.update(agg.kind, row_args[i].clone());
            }
        }
    }
    let mut out = Chunk::empty(naggs);
    for (c, acc) in accs.into_iter().enumerate() {
        out.columns[c].push(acc.finish());
    }
    let stats = AggExecStats {
        partitions: 1,
        threads,
        eval_wall,
        accumulate_wall: t_acc.elapsed(),
        merge_wall: Duration::ZERO,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;

    fn input() -> Chunk {
        Chunk {
            columns: vec![
                // group keys
                vec![
                    Scalar::str("a"),
                    Scalar::str("b"),
                    Scalar::str("a"),
                    Scalar::str("a"),
                ],
                // values with a null
                vec![
                    Scalar::Int(1),
                    Scalar::Int(10),
                    Scalar::Null,
                    Scalar::Int(3),
                ],
            ],
        }
    }

    fn slot(i: usize) -> Expr {
        Expr::Slot(i)
    }

    #[test]
    fn grouped_aggregates() {
        let out = group_aggregate(
            &input(),
            &[slot(0)],
            &[
                Agg::count_star(),
                Agg::count(slot(1)),
                Agg::sum(slot(1)),
                Agg::min(slot(1)),
                Agg::max(slot(1)),
                Agg::avg(slot(1)),
            ],
        );
        assert_eq!(out.rows(), 2);
        let a_row = (0..2)
            .find(|&i| out.get(i, 0).as_str() == Some("a"))
            .unwrap();
        assert_eq!(
            out.get(a_row, 1).as_i64(),
            Some(3),
            "count(*) includes null rows"
        );
        assert_eq!(out.get(a_row, 2).as_i64(), Some(2), "count(v) skips nulls");
        assert_eq!(out.get(a_row, 3).as_i64(), Some(4), "sum");
        assert_eq!(out.get(a_row, 4).as_i64(), Some(1), "min");
        assert_eq!(out.get(a_row, 5).as_i64(), Some(3), "max");
        assert_eq!(out.get(a_row, 6).as_f64(), Some(2.0), "avg skips nulls");
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let empty = Chunk::empty(2);
        let out = group_aggregate(&empty, &[], &[Agg::count_star(), Agg::sum(slot(1))]);
        assert_eq!(out.rows(), 1);
        assert_eq!(out.get(0, 0).as_i64(), Some(0));
        assert!(out.get(0, 1).is_null(), "SUM of nothing is null");
    }

    #[test]
    fn grouped_on_empty_input_is_empty() {
        let empty = Chunk::empty(2);
        let out = group_aggregate(&empty, &[slot(0)], &[Agg::count_star()]);
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn sum_type_promotion() {
        let c = Chunk {
            columns: vec![vec![Scalar::Int(1), Scalar::Float(2.5), Scalar::Int(3)]],
        };
        let out = group_aggregate(&c, &[], &[Agg::sum(slot(0))]);
        assert_eq!(out.get(0, 0).as_f64(), Some(6.5));
        let c = Chunk {
            columns: vec![vec![Scalar::Int(1), Scalar::Int(2)]],
        };
        let out = group_aggregate(&c, &[], &[Agg::sum(slot(0))]);
        assert!(
            matches!(out.get(0, 0), Scalar::Int(3)),
            "pure int sum stays int"
        );
    }

    #[test]
    fn count_distinct() {
        let c = Chunk {
            columns: vec![vec![
                Scalar::Int(1),
                Scalar::Int(1),
                Scalar::Int(2),
                Scalar::Null,
                Scalar::Float(2.0),
            ]],
        };
        let out = group_aggregate(&c, &[], &[Agg::count_distinct(slot(0))]);
        assert_eq!(
            out.get(0, 0).as_i64(),
            Some(2),
            "1, 2 (2.0 == 2; null skipped)"
        );
    }

    #[test]
    fn null_group_key_forms_group() {
        let c = Chunk {
            columns: vec![
                vec![Scalar::Null, Scalar::Null, Scalar::Int(1)],
                vec![Scalar::Int(5), Scalar::Int(6), Scalar::Int(7)],
            ],
        };
        let out = group_aggregate(&c, &[slot(0)], &[Agg::sum(slot(1))]);
        assert_eq!(out.rows(), 2, "null key is one group");
        let null_row = (0..2).find(|&i| out.get(i, 0).is_null()).unwrap();
        assert_eq!(out.get(null_row, 1).as_i64(), Some(11));
    }

    fn assert_bits(a: &Chunk, b: &Chunk, what: &str) {
        assert_eq!(a.rows(), b.rows(), "{what}: rows");
        assert_eq!(a.width(), b.width(), "{what}: width");
        for c in 0..a.width() {
            for r in 0..a.rows() {
                let same = match (a.get(r, c), b.get(r, c)) {
                    (Scalar::Null, Scalar::Null) => true,
                    (Scalar::Int(x), Scalar::Int(y)) => x == y,
                    (Scalar::Float(x), Scalar::Float(y)) => x.to_bits() == y.to_bits(),
                    (Scalar::Str(x), Scalar::Str(y)) => x == y,
                    _ => false,
                };
                assert!(
                    same,
                    "{what}: row {r} col {c}: {:?} vs {:?}",
                    a.get(r, c),
                    b.get(r, c)
                );
            }
        }
    }

    /// Keys mixing nulls, coercing numerics, and strings; values mixing
    /// nulls, ints, and floats whose sum is order-sensitive in f64.
    fn mixed_input(rows: usize) -> Chunk {
        let keycol = (0..rows)
            .map(|i| match i % 6 {
                0 => Scalar::Null,
                1 | 2 => Scalar::Int((i % 5) as i64),
                3 => Scalar::Float((i % 5) as f64),
                _ => Scalar::str(format!("g{}", i % 7)),
            })
            .collect();
        let vals = (0..rows)
            .map(|i| match i % 4 {
                0 => Scalar::Null,
                1 => Scalar::Int(i as i64),
                _ => Scalar::Float(i as f64 * 0.1),
            })
            .collect();
        Chunk {
            columns: vec![keycol, vals],
        }
    }

    fn all_aggs() -> Vec<Agg> {
        vec![
            Agg::count_star(),
            Agg::count(slot(1)),
            Agg::sum(slot(1)),
            Agg::avg(slot(1)),
            Agg::min(slot(1)),
            Agg::max(slot(1)),
            Agg::count_distinct(slot(1)),
        ]
    }

    #[test]
    fn parallel_grouped_matches_oracle_bit_for_bit() {
        // 700 rows crosses the parallel threshold; 40 stays sequential.
        for rows in [40usize, 700] {
            let input = mixed_input(rows);
            let keys = vec![slot(0)];
            let oracle = group_aggregate(&input, &keys, &all_aggs());
            for threads in [1usize, 2, 8] {
                let (par, stats) = group_aggregate_par(&input, &keys, &all_aggs(), threads);
                assert_bits(&par, &oracle, &format!("grouped rows={rows} t={threads}"));
                assert!(stats.partitions >= 1 && stats.threads >= 1);
            }
        }
    }

    #[test]
    fn parallel_global_matches_oracle_bit_for_bit() {
        let input = mixed_input(900);
        let oracle = group_aggregate(&input, &[], &all_aggs());
        for threads in [1usize, 2, 8] {
            let (par, stats) = group_aggregate_par(&input, &[], &all_aggs(), threads);
            assert_bits(&par, &oracle, &format!("global t={threads}"));
            assert_eq!(stats.partitions, 1, "global aggregation never partitions");
        }
    }

    #[test]
    fn parallel_reports_partitioned_shape() {
        let input = mixed_input(700);
        let (_, s) = group_aggregate_par(&input, &[slot(0)], &all_aggs(), 4);
        assert_eq!(s.partitions, crate::par::PARTITIONS);
        assert_eq!(s.threads, 4);
    }

    #[test]
    fn computed_keys_and_args() {
        let c = Chunk {
            columns: vec![vec![
                Scalar::Int(1),
                Scalar::Int(2),
                Scalar::Int(3),
                Scalar::Int(4),
            ]],
        };
        // Group by v % 2 (emulated via v - (v/2)*2 with int div... use cmp).
        let out = group_aggregate(&c, &[slot(0).gt(lit(2))], &[Agg::sum(slot(0).mul(lit(10)))]);
        assert_eq!(out.rows(), 2);
        let hi = (0..2)
            .find(|&i| out.get(i, 0).as_bool() == Some(true))
            .unwrap();
        assert_eq!(out.get(hi, 1).as_i64(), Some(70));
    }
}
