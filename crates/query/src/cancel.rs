//! Cooperative query cancellation and deadlines.
//!
//! A [`CancelToken`] is shared between a query's owner (a server worker, a
//! CLI timeout, a test) and the executor. The owner flips it with
//! [`CancelToken::cancel`] or arms a deadline at construction; the executor
//! polls it at morsel boundaries — per scanned tile, per worker range in
//! the join/aggregation/sort phases, and between pipeline stages in
//! `Query::try_run_with`. Cancellation is *cooperative*: a runaway query
//! dies at the next morsel, not mid-instruction, and no thread is ever
//! killed — workers that observe the flag return structurally-valid empty
//! outputs which the stage boundary then discards by surfacing
//! [`ExecError`].
//!
//! The default token ([`CancelToken::none`]) has no shared state at all:
//! `is_cancelled` is a single `Option` test, so queries that never need
//! cancellation (the entire pre-server API surface) pay nothing.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct CancelState {
    /// `LIVE` / `CANCELLED` / `DEADLINE`. Once non-live, never reset.
    flag: AtomicU8,
    /// Absolute deadline; checked lazily on [`CancelToken::is_cancelled`]
    /// and cached into `flag` so later polls skip the clock read.
    deadline: Option<Instant>,
}

/// Why a query was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The owner called [`CancelToken::cancel`].
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Shared cancellation flag plus optional deadline; cloning shares state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelState>>,
}

impl CancelToken {
    /// The inert token: never cancels, costs one `Option` test per poll.
    pub const fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A live token that cancels only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelState {
                flag: AtomicU8::new(LIVE),
                deadline: None,
            })),
        }
    }

    /// A live token that additionally expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelState {
                flag: AtomicU8::new(LIVE),
                deadline: Instant::now().checked_add(timeout),
            })),
        }
    }

    /// Request cancellation. Idempotent; a deadline that already fired
    /// keeps its `DeadlineExceeded` classification.
    pub fn cancel(&self) {
        if let Some(s) = &self.inner {
            let _ = s
                .flag
                .compare_exchange(LIVE, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Poll the token: true once cancelled or past the deadline. This is
    /// the morsel-boundary check, so it is cheap: one atomic load, plus a
    /// clock read only while a deadline is armed and unexpired.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        let Some(s) = &self.inner else {
            return false;
        };
        match s.flag.load(Ordering::Relaxed) {
            LIVE => match s.deadline {
                Some(d) if Instant::now() >= d => {
                    let _ = s.flag.compare_exchange(
                        LIVE,
                        DEADLINE,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                    true
                }
                _ => false,
            },
            _ => true,
        }
    }

    /// The stage-boundary check: `Err` with the abort cause once tripped.
    #[inline]
    pub fn check(&self) -> Result<(), ExecError> {
        if self.is_cancelled() {
            Err(self.cause().unwrap_or(ExecError::Cancelled))
        } else {
            Ok(())
        }
    }

    /// The abort cause, if the token has tripped.
    pub fn cause(&self) -> Option<ExecError> {
        let s = self.inner.as_ref()?;
        match s.flag.load(Ordering::Relaxed) {
            CANCELLED => Some(ExecError::Cancelled),
            DEADLINE => Some(ExecError::DeadlineExceeded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert_eq!(t.cause(), None);
    }

    #[test]
    fn cancel_is_shared_and_classified() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(t.check().is_ok());
        u.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(ExecError::Cancelled));
        assert_eq!(t.cause(), Some(ExecError::Cancelled));
    }

    #[test]
    fn deadline_trips_and_keeps_classification() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(ExecError::DeadlineExceeded));
        // A later explicit cancel must not reclassify the abort.
        t.cancel();
        assert_eq!(t.cause(), Some(ExecError::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_stays_live() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert_eq!(t.cause(), Some(ExecError::Cancelled));
    }
}
