//! Runtime scalar values.

use std::cmp::Ordering;
use std::sync::Arc;

/// A runtime value flowing between operators. `Timestamp` carries epoch
/// seconds (the §4.9 extraction type); exact decimals surface as `Float`
//  after the `::Decimal` cast.
#[derive(Debug, Clone)]
pub enum Scalar {
    /// SQL null (also the result of failed casts and absent JSON keys).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Shared string.
    Str(Arc<str>),
    /// Epoch seconds.
    Timestamp(i64),
}

impl Scalar {
    /// Build a string scalar.
    pub fn str(s: impl AsRef<str>) -> Scalar {
        Scalar::Str(Arc::from(s.as_ref()))
    }

    /// True if null.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Scalar::Null)
    }

    /// Integer view (no string parsing).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Int(i) => Some(*i),
            Scalar::Float(f) => Some(*f as i64),
            Scalar::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Float view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(i) => Some(*i as f64),
            Scalar::Float(f) => Some(*f),
            Scalar::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is null or the types are
    /// incomparable (which SQL would reject at plan time).
    pub fn compare(&self, other: &Scalar) -> Option<Ordering> {
        use Scalar::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Int(a), Timestamp(b)) | (Timestamp(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Timestamp(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Timestamp(b)) => a.partial_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// Equality for grouping/joining: null groups with null (SQL `GROUP BY`
    /// semantics), type-coercing like [`Scalar::compare`].
    pub fn group_eq(&self, other: &Scalar) -> bool {
        match (self, other) {
            (Scalar::Null, Scalar::Null) => true,
            (Scalar::Null, _) | (_, Scalar::Null) => false,
            _ => self.compare(other) == Some(Ordering::Equal),
        }
    }

    /// Append a canonical byte encoding for hash keys (join/group-by).
    /// Numeric types that compare equal encode identically.
    pub fn write_key(&self, out: &mut Vec<u8>) {
        match self {
            Scalar::Null => out.push(0),
            Scalar::Int(i) => {
                // Integers and integral floats must agree.
                out.push(1);
                out.extend_from_slice(&(*i as f64).to_bits().to_le_bytes());
            }
            Scalar::Float(f) => {
                out.push(1);
                let f = if *f == 0.0 { 0.0 } else { *f }; // -0.0 == 0.0
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Scalar::Timestamp(t) => {
                out.push(1);
                out.extend_from_slice(&(*t as f64).to_bits().to_le_bytes());
            }
            Scalar::Bool(b) => {
                out.push(2);
                out.push(*b as u8);
            }
            Scalar::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Render for result display.
    pub fn display(&self) -> String {
        match self {
            Scalar::Null => "null".to_owned(),
            Scalar::Int(i) => i.to_string(),
            Scalar::Float(f) => format!("{f:.4}"),
            Scalar::Bool(b) => b.to_string(),
            Scalar::Str(s) => s.to_string(),
            Scalar::Timestamp(t) => jt_core::format_timestamp(*t),
        }
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int(v)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float(v)
    }
}

impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_coerce_numerics() {
        assert_eq!(
            Scalar::Int(2).compare(&Scalar::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Scalar::Int(2).compare(&Scalar::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Scalar::str("a").compare(&Scalar::str("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Scalar::Null.compare(&Scalar::Int(1)), None);
        assert_eq!(Scalar::str("a").compare(&Scalar::Int(1)), None);
    }

    #[test]
    fn group_semantics() {
        assert!(Scalar::Null.group_eq(&Scalar::Null));
        assert!(!Scalar::Null.group_eq(&Scalar::Int(0)));
        assert!(Scalar::Int(3).group_eq(&Scalar::Float(3.0)));
    }

    #[test]
    fn hash_keys_agree_with_equality() {
        let pairs = [
            (Scalar::Int(5), Scalar::Float(5.0)),
            (Scalar::Float(0.0), Scalar::Float(-0.0)),
            (Scalar::Timestamp(100), Scalar::Int(100)),
        ];
        for (a, b) in pairs {
            let mut ka = Vec::new();
            let mut kb = Vec::new();
            a.write_key(&mut ka);
            b.write_key(&mut kb);
            assert_eq!(ka, kb, "{a:?} vs {b:?}");
        }
        let mut ka = Vec::new();
        let mut kb = Vec::new();
        Scalar::Int(1).write_key(&mut ka);
        Scalar::str("1").write_key(&mut kb);
        assert_ne!(ka, kb);
    }
}
