//! Typed columnar predicate kernels for the vectorized scan (paper §4.2).
//!
//! The scan keeps a *selection vector* — the ascending row ids of the
//! current tile that still satisfy every predicate applied so far. Each
//! pushed-down conjunct that references exactly one access slot served by an
//! extracted column is compiled into a [`CompiledKernel`]: a typed
//! comparison, IN-list, null test, string pattern, or `year()` test that
//! runs directly over the tile's column storage and refines the selection
//! vector in place. Conjuncts no kernel covers stay in a residual expression
//! evaluated batch-at-a-time ([`crate::expr::Expr::eval_batch`]).
//!
//! Kernels are ordered by estimated selectivity (HyperLogLog distinct
//! counts and null fractions from the tile header, §4.6) scaled by a cost
//! tier, so cheap selective predicates shrink the vector before expensive
//! ones run. Results are bit-identical to row-at-a-time evaluation: every
//! typed arm replicates the corresponding [`eval_access`] conversion and
//! [`Scalar::compare`] coercion exactly, and any row the typed path cannot
//! decide (null entries of fallback columns, rare type combinations) is
//! routed through the original row-wise evaluator.

use crate::access::{eval_access, Access, ResolvedAccess};
use crate::expr::{CmpOp, Expr};
use crate::scalar::Scalar;
use jt_core::{AccessType, ColType, ColumnData, Tile};
use jt_jsonb::NumericString;
use std::cmp::Ordering;

/// A selection vector: ascending row ids of one tile that survive the
/// predicates applied so far.
pub type SelVec = Vec<u32>;

/// The typed operation of one compiled kernel.
#[derive(Debug, Clone)]
pub(crate) enum KernelOp {
    /// Integer-valued access vs integer-kind constant (i64 compare).
    CmpI { op: CmpOp, rhs: i64 },
    /// Integer-valued access vs float constant (`v as f64` compare).
    CmpIF { op: CmpOp, rhs: f64 },
    /// Float-valued access vs numeric constant (f64 compare).
    CmpF { op: CmpOp, rhs: f64 },
    /// Text access vs string constant (byte compare).
    CmpS { op: CmpOp, rhs: String },
    /// Bool access vs bool constant.
    CmpB { op: CmpOp, rhs: bool },
    /// Integer-valued access IN list (exact int members + float members).
    InI { ints: Vec<i64>, floats: Vec<f64> },
    /// Float-valued access IN list (all numeric members as f64).
    InF { vals: Vec<f64> },
    /// Text access IN list (string members only).
    InS { vals: Vec<String> },
    /// `IS NULL`.
    IsNull,
    /// `IS NOT NULL`.
    IsNotNull,
    /// Substring test on a text access.
    Contains(String),
    /// Prefix test on a text access.
    StartsWith(String),
    /// Suffix test on a text access.
    EndsWith(String),
    /// `year(ts)` vs integer-kind constant (Timestamp accesses).
    YearCmp { op: CmpOp, rhs: i64 },
    /// Recognized shape without a typed arm: exact row-wise evaluation of
    /// the stored conjunct, still driven by the selection vector.
    Exact,
}

/// One conjunct compiled against one tile.
#[derive(Debug, Clone)]
pub(crate) struct CompiledKernel {
    /// Access slot the conjunct references.
    pub slot: usize,
    /// Column chunk index serving that slot in this tile.
    pub col: usize,
    /// Whether null column entries must consult the binary document.
    pub fallback: bool,
    /// The typed operation.
    pub op: KernelOp,
    /// The original conjunct, for the exact row-wise paths.
    pub conjunct: Expr,
    /// Selectivity-times-cost rank; kernels run in ascending order.
    pub rank: f64,
}

/// The per-tile compilation result: kernels in execution order plus the
/// residual conjunction for the batched interpreter.
pub(crate) struct TileKernels {
    pub kernels: Vec<CompiledKernel>,
    pub residual: Option<Expr>,
}

/// Split `filter` into typed kernels and a residual expression for `tile`.
pub(crate) fn compile(
    filter: Option<&Expr>,
    accesses: &[Access],
    plans: &[ResolvedAccess],
    tile: &Tile,
) -> TileKernels {
    let Some(filter) = filter else {
        return TileKernels {
            kernels: Vec::new(),
            residual: None,
        };
    };
    let mut kernels = Vec::new();
    let mut residual: Option<Expr> = None;
    for conjunct in conjuncts(filter) {
        match compile_conjunct(conjunct, accesses, plans, tile) {
            Some(k) => kernels.push(k),
            None => {
                residual = Some(match residual.take() {
                    Some(r) => r.and(conjunct.clone()),
                    None => conjunct.clone(),
                });
            }
        }
    }
    // Most-selective-first, discounted by evaluation cost; stable sort keeps
    // ties in declaration order for determinism.
    kernels.sort_by(|a, b| a.rank.total_cmp(&b.rank));
    TileKernels { kernels, residual }
}

/// Top-level AND-decomposition of a filter.
pub(crate) fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other],
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

fn compile_conjunct(
    e: &Expr,
    accesses: &[Access],
    plans: &[ResolvedAccess],
    tile: &Tile,
) -> Option<CompiledKernel> {
    let (slot, op) = match e {
        Expr::Cmp(a, op, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Slot(i), Expr::Const(c)) => (*i, cmp_op(accesses[*i].ty, *op, c)),
            (Expr::Const(c), Expr::Slot(i)) => (*i, cmp_op(accesses[*i].ty, flip(*op), c)),
            (Expr::Year(y), Expr::Const(c)) => match y.as_ref() {
                Expr::Slot(i) => (*i, year_op(accesses[*i].ty, *op, c)),
                _ => return None,
            },
            (Expr::Const(c), Expr::Year(y)) => match y.as_ref() {
                Expr::Slot(i) => (*i, year_op(accesses[*i].ty, flip(*op), c)),
                _ => return None,
            },
            _ => return None,
        },
        Expr::Contains(a, p) => match a.as_ref() {
            Expr::Slot(i) if accesses[*i].ty == AccessType::Text => {
                (*i, KernelOp::Contains(p.clone()))
            }
            Expr::Slot(i) => (*i, KernelOp::Exact),
            _ => return None,
        },
        Expr::StartsWith(a, p) => match a.as_ref() {
            Expr::Slot(i) if accesses[*i].ty == AccessType::Text => {
                (*i, KernelOp::StartsWith(p.clone()))
            }
            Expr::Slot(i) => (*i, KernelOp::Exact),
            _ => return None,
        },
        Expr::EndsWith(a, p) => match a.as_ref() {
            Expr::Slot(i) if accesses[*i].ty == AccessType::Text => {
                (*i, KernelOp::EndsWith(p.clone()))
            }
            Expr::Slot(i) => (*i, KernelOp::Exact),
            _ => return None,
        },
        Expr::IsNull(a) => match a.as_ref() {
            Expr::Slot(i) => (*i, KernelOp::IsNull),
            _ => return None,
        },
        Expr::IsNotNull(a) => match a.as_ref() {
            Expr::Slot(i) => (*i, KernelOp::IsNotNull),
            _ => return None,
        },
        Expr::InList(a, list) => match a.as_ref() {
            Expr::Slot(i) => (*i, in_op(accesses[*i].ty, list)),
            _ => return None,
        },
        _ => return None,
    };
    let ResolvedAccess::Column { col, fallback } = plans[slot] else {
        return None;
    };
    let chunk = tile.column(col);
    let sel = selectivity(&op, tile, col, chunk.len(), chunk.null_count());
    let cost = cost_tier(&op) + fallback as u8;
    Some(CompiledKernel {
        slot,
        col,
        fallback,
        rank: sel * (1.0 + 0.25 * cost as f64),
        op,
        conjunct: e.clone(),
    })
}

/// Map `slot <op> const` to a typed kernel op, following the coercion rules
/// of [`Scalar::compare`] for the value kind the access type produces.
fn cmp_op(ty: AccessType, op: CmpOp, c: &Scalar) -> KernelOp {
    match ty {
        // Int and Timestamp accesses produce integer-kind scalars.
        AccessType::Int | AccessType::Timestamp => match c {
            Scalar::Int(x) | Scalar::Timestamp(x) => KernelOp::CmpI { op, rhs: *x },
            Scalar::Float(f) => KernelOp::CmpIF { op, rhs: *f },
            _ => KernelOp::Exact, // incomparable: never true
        },
        AccessType::Float | AccessType::Numeric => match c {
            Scalar::Int(x) => KernelOp::CmpF { op, rhs: *x as f64 },
            Scalar::Float(f) => KernelOp::CmpF { op, rhs: *f },
            Scalar::Timestamp(t) => KernelOp::CmpF { op, rhs: *t as f64 },
            _ => KernelOp::Exact,
        },
        AccessType::Text => match c {
            Scalar::Str(s) => KernelOp::CmpS {
                op,
                rhs: s.to_string(),
            },
            _ => KernelOp::Exact,
        },
        AccessType::Bool => match c {
            Scalar::Bool(b) => KernelOp::CmpB { op, rhs: *b },
            _ => KernelOp::Exact,
        },
        AccessType::Json => KernelOp::Exact,
    }
}

fn year_op(ty: AccessType, op: CmpOp, c: &Scalar) -> KernelOp {
    match (ty, c) {
        (AccessType::Timestamp, Scalar::Int(x) | Scalar::Timestamp(x)) => {
            KernelOp::YearCmp { op, rhs: *x }
        }
        _ => KernelOp::Exact,
    }
}

fn in_op(ty: AccessType, list: &[Scalar]) -> KernelOp {
    match ty {
        AccessType::Int | AccessType::Timestamp => {
            let mut ints = Vec::new();
            let mut floats = Vec::new();
            for v in list {
                match v {
                    Scalar::Int(x) | Scalar::Timestamp(x) => ints.push(*x),
                    Scalar::Float(f) => floats.push(*f),
                    _ => {} // never equal to an integer-kind value
                }
            }
            KernelOp::InI { ints, floats }
        }
        AccessType::Float | AccessType::Numeric => {
            let vals = list
                .iter()
                .filter_map(|v| match v {
                    Scalar::Int(x) | Scalar::Timestamp(x) => Some(*x as f64),
                    Scalar::Float(f) => Some(*f),
                    _ => None,
                })
                .collect();
            KernelOp::InF { vals }
        }
        AccessType::Text => {
            let vals = list
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect();
            KernelOp::InS { vals }
        }
        _ => KernelOp::Exact,
    }
}

/// Estimated fraction of rows a kernel keeps, from the §4.6 tile metadata:
/// HyperLogLog distinct counts for equality and IN, the chunk null fraction
/// for null tests, and classic defaults elsewhere.
fn selectivity(op: &KernelOp, tile: &Tile, col: usize, len: usize, nulls: usize) -> f64 {
    let nd = tile
        .header
        .sketches
        .get(col)
        .map_or(10.0, |s| s.estimate().max(1.0));
    let null_frac = nulls as f64 / len.max(1) as f64;
    let cmp_sel = |op: &CmpOp| match op {
        CmpOp::Eq => 1.0 / nd,
        CmpOp::Ne => 1.0 - 1.0 / nd,
        _ => 1.0 / 3.0,
    };
    match op {
        KernelOp::CmpI { op, .. }
        | KernelOp::CmpIF { op, .. }
        | KernelOp::CmpF { op, .. }
        | KernelOp::CmpS { op, .. }
        | KernelOp::CmpB { op, .. }
        | KernelOp::YearCmp { op, .. } => cmp_sel(op),
        KernelOp::InI { ints, floats } => ((ints.len() + floats.len()) as f64 / nd).min(1.0),
        KernelOp::InF { vals } => (vals.len() as f64 / nd).min(1.0),
        KernelOp::InS { vals } => (vals.len() as f64 / nd).min(1.0),
        KernelOp::IsNull => null_frac,
        KernelOp::IsNotNull => 1.0 - null_frac,
        KernelOp::Contains(_) | KernelOp::StartsWith(_) | KernelOp::EndsWith(_) => 0.1,
        KernelOp::Exact => 0.5,
    }
}

/// Relative evaluation cost: primitive compares are free, string work is
/// dearer, substring search and row-wise fallbacks dearest.
fn cost_tier(op: &KernelOp) -> u8 {
    match op {
        KernelOp::CmpI { .. }
        | KernelOp::CmpIF { .. }
        | KernelOp::CmpF { .. }
        | KernelOp::CmpB { .. }
        | KernelOp::IsNull
        | KernelOp::IsNotNull
        | KernelOp::YearCmp { .. } => 0,
        KernelOp::CmpS { .. }
        | KernelOp::InI { .. }
        | KernelOp::InF { .. }
        | KernelOp::InS { .. }
        | KernelOp::StartsWith(_)
        | KernelOp::EndsWith(_) => 1,
        KernelOp::Contains(_) => 2,
        KernelOp::Exact => 3,
    }
}

#[inline]
fn cmp_ord(ord: Ordering, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

#[inline]
fn cmp_opt(ord: Option<Ordering>, op: CmpOp) -> bool {
    ord.is_some_and(|o| cmp_ord(o, op))
}

#[inline]
fn str_at<'a>(offsets: &[u32], bytes: &'a [u8], r: usize) -> &'a str {
    let s = offsets[r] as usize;
    let e = offsets[r + 1] as usize;
    // Safety: the builder only pushes whole UTF-8 strings.
    unsafe { std::str::from_utf8_unchecked(&bytes[s..e]) }
}

impl CompiledKernel {
    /// Refine `sel` in place: keep exactly the rows for which the conjunct
    /// evaluates to SQL TRUE, matching row-at-a-time semantics bit for bit.
    /// Returns how many rows went through the exact row-wise fallback (the
    /// rest ran a typed arm) — the caller attributes rows to evaluation
    /// stages from it at zero per-row cost.
    pub(crate) fn apply(&self, tile: &Tile, accesses: &[Access], sel: &mut SelVec) -> u64 {
        let access = &accesses[self.slot];
        let chunk = tile.column(self.col);
        let nb = chunk.nulls();
        let has_nulls = nb.null_count() > 0;
        let fallback = self.fallback;
        // A null access value satisfies only IS NULL.
        let null_default = matches!(self.op, KernelOp::IsNull);
        let plan = ResolvedAccess::Column {
            col: self.col,
            fallback,
        };
        // Exact row-wise evaluation (fallback rows and unspecialized ops):
        // reproduce what the scalar path does for this conjunct.
        let mut scratch: Vec<Scalar> = Vec::new();
        let exact_count = std::cell::Cell::new(0u64);
        let mut exact_row = |r: usize| -> bool {
            exact_count.set(exact_count.get() + 1);
            if scratch.is_empty() {
                scratch.resize(accesses.len(), Scalar::Null);
            }
            scratch[self.slot] = eval_access(tile, plan, access, r);
            self.conjunct.eval_row_bool(&scratch)
        };
        // Shared skeleton: null entries route to the fallback document (or
        // the null default), everything else runs the typed test.
        macro_rules! retain {
            (|$r:ident| $test:expr) => {
                sel.retain(|&row_id| {
                    let $r = row_id as usize;
                    if has_nulls && nb.is_null($r) {
                        if fallback {
                            exact_row($r)
                        } else {
                            null_default
                        }
                    } else {
                        $test
                    }
                })
            };
        }
        match (&self.op, chunk.data()) {
            // --- numeric comparisons -----------------------------------
            (KernelOp::CmpI { op, rhs }, ColumnData::Int(v)) => {
                retain!(|r| cmp_ord(v[r].cmp(rhs), *op))
            }
            (KernelOp::CmpI { op, rhs }, ColumnData::Date(v)) => {
                retain!(|r| cmp_ord(v[r].cmp(rhs), *op))
            }
            (KernelOp::CmpI { op, rhs }, ColumnData::Float(v)) => {
                retain!(|r| cmp_ord((v[r] as i64).cmp(rhs), *op))
            }
            (KernelOp::CmpI { op, rhs }, ColumnData::Numeric { mantissa, scale }) => {
                retain!(|r| NumericString {
                    mantissa: mantissa[r],
                    scale: scale[r]
                }
                .to_i64()
                .is_some_and(|v| cmp_ord(v.cmp(rhs), *op)))
            }
            (KernelOp::CmpI { op, rhs }, ColumnData::Str { offsets, bytes }) => {
                // Timestamp access served by a string column: parse per row.
                retain!(|r| jt_core::parse_timestamp(str_at(offsets, bytes, r))
                    .is_some_and(|t| cmp_ord(t.cmp(rhs), *op)))
            }
            (KernelOp::CmpIF { op, rhs }, ColumnData::Int(v)) => {
                retain!(|r| cmp_opt((v[r] as f64).partial_cmp(rhs), *op))
            }
            (KernelOp::CmpIF { op, rhs }, ColumnData::Date(v)) => {
                retain!(|r| cmp_opt((v[r] as f64).partial_cmp(rhs), *op))
            }
            (KernelOp::CmpIF { op, rhs }, ColumnData::Float(v)) => {
                retain!(|r| cmp_opt(((v[r] as i64) as f64).partial_cmp(rhs), *op))
            }
            (KernelOp::CmpF { op, rhs }, ColumnData::Float(v)) => {
                retain!(|r| cmp_opt(v[r].partial_cmp(rhs), *op))
            }
            (KernelOp::CmpF { op, rhs }, ColumnData::Int(v)) => {
                retain!(|r| cmp_opt((v[r] as f64).partial_cmp(rhs), *op))
            }
            (KernelOp::CmpF { op, rhs }, ColumnData::Numeric { mantissa, scale }) => {
                retain!(|r| cmp_opt(
                    NumericString {
                        mantissa: mantissa[r],
                        scale: scale[r]
                    }
                    .to_f64()
                    .partial_cmp(rhs),
                    *op
                ))
            }
            // --- string and bool comparisons ---------------------------
            (KernelOp::CmpS { op, rhs }, ColumnData::Str { offsets, bytes }) => {
                retain!(|r| cmp_ord(str_at(offsets, bytes, r).cmp(rhs.as_str()), *op))
            }
            (KernelOp::CmpS { op, rhs }, ColumnData::Numeric { mantissa, scale }) => {
                retain!(|r| cmp_ord(
                    NumericString {
                        mantissa: mantissa[r],
                        scale: scale[r]
                    }
                    .to_text()
                    .as_str()
                    .cmp(rhs.as_str()),
                    *op
                ))
            }
            (KernelOp::CmpB { op, rhs }, ColumnData::Bool(v)) => {
                retain!(|r| cmp_ord(v[r].cmp(rhs), *op))
            }
            // --- IN lists ----------------------------------------------
            (KernelOp::InI { ints, floats }, ColumnData::Int(v)) => {
                retain!(|r| in_int(v[r], ints, floats))
            }
            (KernelOp::InI { ints, floats }, ColumnData::Date(v)) => {
                retain!(|r| in_int(v[r], ints, floats))
            }
            (KernelOp::InI { ints, floats }, ColumnData::Float(v)) => {
                retain!(|r| in_int(v[r] as i64, ints, floats))
            }
            (KernelOp::InI { ints, floats }, ColumnData::Numeric { mantissa, scale }) => {
                retain!(|r| NumericString {
                    mantissa: mantissa[r],
                    scale: scale[r]
                }
                .to_i64()
                .is_some_and(|v| in_int(v, ints, floats)))
            }
            (KernelOp::InI { ints, floats }, ColumnData::Str { offsets, bytes }) => {
                retain!(|r| jt_core::parse_timestamp(str_at(offsets, bytes, r))
                    .is_some_and(|t| in_int(t, ints, floats)))
            }
            (KernelOp::InF { vals }, ColumnData::Float(v)) => {
                retain!(|r| vals.iter().any(|f| v[r] == *f))
            }
            (KernelOp::InF { vals }, ColumnData::Int(v)) => {
                retain!(|r| vals.iter().any(|f| v[r] as f64 == *f))
            }
            (KernelOp::InF { vals }, ColumnData::Numeric { mantissa, scale }) => {
                retain!(|r| {
                    let v = NumericString {
                        mantissa: mantissa[r],
                        scale: scale[r],
                    }
                    .to_f64();
                    vals.contains(&v)
                })
            }
            (KernelOp::InS { vals }, ColumnData::Str { offsets, bytes }) => {
                retain!(|r| {
                    let s = str_at(offsets, bytes, r);
                    vals.iter().any(|x| s == x.as_str())
                })
            }
            (KernelOp::InS { vals }, ColumnData::Numeric { mantissa, scale }) => {
                retain!(|r| {
                    let s = NumericString {
                        mantissa: mantissa[r],
                        scale: scale[r],
                    }
                    .to_text();
                    vals.contains(&s)
                })
            }
            // --- null tests (total conversions only) -------------------
            (KernelOp::IsNull, _) if conversion_total(access.ty, chunk.col_type()) => {
                retain!(|_r| false)
            }
            (KernelOp::IsNotNull, _) if conversion_total(access.ty, chunk.col_type()) => {
                retain!(|_r| true)
            }
            // --- string patterns ---------------------------------------
            (KernelOp::Contains(p), ColumnData::Str { offsets, bytes }) => {
                retain!(|r| str_at(offsets, bytes, r).contains(p.as_str()))
            }
            (KernelOp::StartsWith(p), ColumnData::Str { offsets, bytes }) => {
                retain!(|r| str_at(offsets, bytes, r).starts_with(p.as_str()))
            }
            (KernelOp::EndsWith(p), ColumnData::Str { offsets, bytes }) => {
                retain!(|r| str_at(offsets, bytes, r).ends_with(p.as_str()))
            }
            // --- year() ------------------------------------------------
            (KernelOp::YearCmp { op, rhs }, ColumnData::Date(v)) => {
                retain!(|r| cmp_ord(jt_core::timestamp_year(v[r]).cmp(rhs), *op))
            }
            // --- everything else: exact row-wise over the vector -------
            _ => sel.retain(|&r| exact_row(r as usize)),
        }
        exact_count.get()
    }
}

/// IN-list membership for an integer-kind value, with the exact coercions
/// of [`Scalar::group_eq`]: integer members compare as i64, float members
/// as `v as f64`.
#[inline]
fn in_int(v: i64, ints: &[i64], floats: &[f64]) -> bool {
    ints.contains(&v) || floats.contains(&(v as f64))
}

/// Whether the access-type conversion yields a non-null scalar for every
/// non-null column entry. Int-from-Numeric (`to_i64`) and
/// Timestamp-from-Str (`parse_timestamp`) can fail per row, so null tests
/// on those pairs cannot be answered from the bitmap alone.
fn conversion_total(ty: AccessType, col: ColType) -> bool {
    matches!(
        (ty, col),
        (AccessType::Int, ColType::Int | ColType::Float)
            | (
                AccessType::Float | AccessType::Numeric,
                ColType::Int | ColType::Float | ColType::Numeric
            )
            | (AccessType::Bool, ColType::Bool)
            | (AccessType::Text, ColType::Str | ColType::Numeric)
            | (AccessType::Timestamp, ColType::Date)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::resolve_access;
    use crate::expr::{col, lit, lit_str};
    use jt_core::{Relation, StorageMode, TilesConfig};

    fn relation() -> Relation {
        let docs: Vec<jt_json::Value> = (0..200)
            .map(|i| {
                jt_json::parse(&format!(
                    r#"{{"id":{i},"name":"user{}","price":"{}.25","when":"2019-0{}-15"}}"#,
                    i % 10,
                    i % 7,
                    1 + i % 9
                ))
                .unwrap()
            })
            .collect();
        Relation::load(&docs, TilesConfig::default())
    }

    fn setup(filter: Expr, accesses: Vec<Access>) -> (Relation, Expr, Vec<Access>) {
        let rel = relation();
        let mut f = filter;
        f.resolve(&|name| accesses.iter().position(|a| a.name == name).unwrap());
        (rel, f, accesses)
    }

    #[test]
    fn kernels_match_rowwise_evaluation() {
        let accesses = vec![
            Access::new("id", "id", AccessType::Int),
            Access::new("name", "name", AccessType::Text),
            Access::new("price", "price", AccessType::Numeric),
            Access::new("when", "when", AccessType::Timestamp),
        ];
        let filters = [
            col("id").ge(lit(20)).and(col("id").lt(lit(120))),
            col("name").eq(lit_str("user3")),
            col("name").contains("ser5").and(col("id").ne(lit(55))),
            col("price").gt(crate::expr::lit_f64(3.0)),
            col("when").ge(crate::expr::lit_date("2019-04-01")),
            col("when").year().eq(lit(2019)),
            col("id").in_list(vec![Scalar::Int(7), Scalar::Float(9.0), Scalar::str("x")]),
            col("id").is_not_null().and(col("name").starts_with("user")),
        ];
        for filter in filters {
            let (rel, f, accesses) = setup(filter, accesses.clone());
            let tile = &rel.tiles()[0];
            let plans: Vec<_> = accesses
                .iter()
                .map(|a| resolve_access(tile, a, StorageMode::Tiles))
                .collect();
            let tk = compile(Some(&f), &accesses, &plans, tile);
            assert!(tk.residual.is_none(), "all conjuncts kernelized: {f:?}");
            let mut sel: SelVec = (0..tile.len() as u32).collect();
            for k in &tk.kernels {
                k.apply(tile, &accesses, &mut sel);
            }
            let expected: Vec<u32> = (0..tile.len())
                .filter(|&r| {
                    let row: Vec<Scalar> = accesses
                        .iter()
                        .zip(&plans)
                        .map(|(a, p)| eval_access(tile, *p, a, r))
                        .collect();
                    f.eval_row_bool(&row)
                })
                .map(|r| r as u32)
                .collect();
            assert_eq!(sel, expected, "filter {f:?}");
        }
    }

    #[test]
    fn kernel_order_follows_selectivity() {
        // id is nearly unique (high distinct count → Eq very selective);
        // name has ~10 distinct values. The id equality must run first.
        let accesses = vec![
            Access::new("id", "id", AccessType::Int),
            Access::new("name", "name", AccessType::Text),
        ];
        let (rel, f, accesses) = setup(
            col("name").eq(lit_str("user3")).and(col("id").eq(lit(42))),
            accesses,
        );
        let tile = &rel.tiles()[0];
        let plans: Vec<_> = accesses
            .iter()
            .map(|a| resolve_access(tile, a, StorageMode::Tiles))
            .collect();
        let tk = compile(Some(&f), &accesses, &plans, tile);
        assert_eq!(tk.kernels.len(), 2);
        assert_eq!(tk.kernels[0].slot, 0, "unique id equality ordered first");
        assert!(tk.kernels[0].rank < tk.kernels[1].rank);
    }

    #[test]
    fn multi_slot_conjuncts_stay_residual() {
        let accesses = vec![
            Access::new("a", "id", AccessType::Int),
            Access::new("b", "id", AccessType::Int),
        ];
        let (rel, f, accesses) = setup(col("a").eq(col("b")).and(col("a").gt(lit(5))), accesses);
        let tile = &rel.tiles()[0];
        let plans: Vec<_> = accesses
            .iter()
            .map(|a| resolve_access(tile, a, StorageMode::Tiles))
            .collect();
        let tk = compile(Some(&f), &accesses, &plans, tile);
        assert_eq!(tk.kernels.len(), 1, "single-slot conjunct kernelized");
        assert!(
            tk.residual.is_some(),
            "slot-to-slot comparison left residual"
        );
    }
}
