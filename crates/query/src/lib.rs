//! # jt-query — relational query engine over JSON tiles (paper §4)
//!
//! The paper integrates JSON tiles into Umbra; this crate is the relational
//! substrate our reproduction integrates into instead. It implements the
//! query-side techniques of §4 on top of `jt-core` relations:
//!
//! * **Access-expression push-down** (§4.2): every JSON access a query
//!   needs is declared on the table scan, which serves it from an extracted
//!   column when the tile has one and from the binary document otherwise
//!   (§4.5). Resolution happens once per tile and is reused for all its
//!   tuples.
//! * **Cast rewriting** (§4.3): accesses carry their requested SQL type
//!   ([`jt_core::AccessType`]), so a `->> k :: BigInt` reads the extracted
//!   integer column directly instead of materializing text and re-parsing.
//! * **Tile skipping** (§4.8): when a null-rejecting predicate references a
//!   path that a tile has neither extracted nor seen (Bloom filter), the
//!   whole tile is skipped.
//! * **Optimizer integration** (§4.6): joins are greedily ordered by
//!   cardinality estimates from the relation statistics (frequency counters
//!   and HyperLogLog distinct counts).
//!
//! The engine executes morsel-style: tiles are the parallel work units for
//! scans; joins, aggregation and sorting run on the merged results.
//!
//! ```
//! use jt_core::{Relation, TilesConfig};
//! use jt_query::{Query, col, lit, AccessType};
//! let docs: Vec<_> = (0..100)
//!     .map(|i| jt_json::parse(&format!(r#"{{"v": {i}}}"#)).unwrap())
//!     .collect();
//! let rel = Relation::load(&docs, TilesConfig::default());
//! let result = Query::scan("t", &rel)
//!     .access("v", AccessType::Int)
//!     .filter(col("v").lt(lit(10)))
//!     .aggregate(vec![], vec![jt_query::Agg::sum(col("v"))])
//!     .run();
//! assert_eq!(result.column(0)[0].as_i64(), Some(45));
//! ```

mod access;
mod agg;
mod cancel;
mod cost;
mod expr;
mod join;
mod kernel;
mod logical;
mod par;
mod plan;
mod profile;
mod scalar;
mod scan;
mod sort;

pub use access::{parse_dotted_path, Access};
pub use agg::{
    group_aggregate, group_aggregate_par, group_aggregate_par_cancellable, Agg, AggExecStats,
    AggKind,
};
pub use cancel::{CancelToken, ExecError};
pub use cost::CostModel;
pub use expr::{col, lit, lit_date, lit_f64, lit_str, CmpOp, Expr};
pub use join::{
    anti_join, anti_join_par, anti_join_par_cancellable, hash_join, hash_join_bounded,
    hash_join_par, hash_join_par_bounded_cancellable, hash_join_par_cancellable, semi_join,
    semi_join_par, semi_join_par_cancellable, JoinExecStats,
};
pub use jt_core::AccessType;
pub use kernel::SelVec;
pub use logical::{
    explain_text, optimize, optimize_timed, optimize_with_reports, plan_and_lower, LogicalBuilder,
    LogicalPlan, Pass, PassReport, PassTiming, Planned, PlannerOptions,
};
pub use plan::{ExecOptions, JoinExplain, PlanExplain, Query, ResultSet, TableExplain};
pub use profile::{ExecProfile, JoinProfile, ScanProfile, StageProfile};
pub use scalar::Scalar;
pub use scan::{execute_scan, execute_scan_cancellable, execute_scan_rowwise, ScanSpec, ScanStats};
pub use sort::{
    sort_chunk, sort_chunk_cancellable, sort_chunk_seq, total_compare, write_sort_key, SortStats,
};

/// A materialized column-major batch of rows.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    /// Column vectors, all the same length.
    pub columns: Vec<Vec<Scalar>>,
}

impl Chunk {
    /// An empty chunk with `n` columns.
    pub fn empty(n: usize) -> Chunk {
        Chunk {
            columns: vec![Vec::new(); n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Append all rows of `other` (same width).
    pub fn append(&mut self, other: Chunk) {
        if self.columns.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(self.width(), other.width(), "chunk width mismatch");
        for (a, b) in self.columns.iter_mut().zip(other.columns) {
            a.extend(b);
        }
    }

    /// The scalar at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &Scalar {
        &self.columns[col][row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_append() {
        let mut a = Chunk {
            columns: vec![vec![Scalar::Int(1)], vec![Scalar::Int(2)]],
        };
        let b = Chunk {
            columns: vec![vec![Scalar::Int(3)], vec![Scalar::Int(4)]],
        };
        a.append(b);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.get(1, 0).as_i64(), Some(3));
        assert_eq!(a.get(1, 1).as_i64(), Some(4));
    }

    #[test]
    fn empty_into_append() {
        let mut a = Chunk::default();
        a.append(Chunk {
            columns: vec![vec![Scalar::Int(7)]],
        });
        assert_eq!(a.rows(), 1);
    }
}
