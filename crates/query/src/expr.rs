//! Scalar expressions over operator output slots.
//!
//! Expressions reference columns by *name* at build time; the planner
//! resolves names to slot indices once, so evaluation is index-based.
//! [`Expr::null_rejecting_slots`] powers the §4.8 tile-skipping analysis:
//! a slot is null-rejecting when a null value there makes the whole
//! predicate non-true (comparisons, conjunctions, `IS NOT NULL`).

use crate::scalar::Scalar;
use crate::Chunk;
use std::cmp::Ordering;
use std::collections::HashSet;

/// Anything an expression can read slots from.
pub trait RowView {
    /// The scalar in slot `i` of the current row.
    fn slot(&self, i: usize) -> &Scalar;
}

impl RowView for (&Chunk, usize) {
    #[inline]
    fn slot(&self, i: usize) -> &Scalar {
        self.0.get(self.1, i)
    }
}

impl RowView for &[Scalar] {
    #[inline]
    fn slot(&self, i: usize) -> &Scalar {
        &self[i]
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Named column reference (resolved to [`Expr::Slot`] by the planner).
    Col(String),
    /// Resolved slot reference.
    Slot(usize),
    /// Literal.
    Const(Scalar),
    /// Comparison; SQL three-valued logic collapses unknown to false.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic; null-propagating.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// `IS NULL`.
    IsNull(Box<Expr>),
    /// `IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// Case-sensitive substring test (`LIKE '%..%'`).
    Contains(Box<Expr>, String),
    /// String prefix test (`LIKE '..%'`).
    StartsWith(Box<Expr>, String),
    /// String suffix test (`LIKE '%..'`).
    EndsWith(Box<Expr>, String),
    /// `IN (…)` over literals.
    InList(Box<Expr>, Vec<Scalar>),
    /// `EXTRACT(YEAR FROM ts)`.
    Year(Box<Expr>),
}

/// Named column reference.
pub fn col(name: &str) -> Expr {
    Expr::Col(name.to_owned())
}

/// Integer literal.
pub fn lit(v: i64) -> Expr {
    Expr::Const(Scalar::Int(v))
}

/// Float literal.
pub fn lit_f64(v: f64) -> Expr {
    Expr::Const(Scalar::Float(v))
}

/// String literal.
pub fn lit_str(v: &str) -> Expr {
    Expr::Const(Scalar::str(v))
}

/// Date literal (`YYYY-MM-DD…`), parsed to a timestamp constant.
pub fn lit_date(v: &str) -> Expr {
    Expr::Const(Scalar::Timestamp(
        jt_core::parse_timestamp(v).unwrap_or_else(|| panic!("bad date literal {v:?}")),
    ))
}

impl Expr {
    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(other))
    }
    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ne, Box::new(other))
    }
    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Lt, Box::new(other))
    }
    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Le, Box::new(other))
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Gt, Box::new(other))
    }
    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ge, Box::new(other))
    }
    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }
    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Add, Box::new(other))
    }
    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Sub, Box::new(other))
    }
    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Mul, Box::new(other))
    }
    /// `self / other`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Div, Box::new(other))
    }
    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self IS NOT NULL`
    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }
    /// `self LIKE '%pat%'`
    pub fn contains(self, pat: &str) -> Expr {
        Expr::Contains(Box::new(self), pat.to_owned())
    }
    /// `self LIKE 'pat%'`
    pub fn starts_with(self, pat: &str) -> Expr {
        Expr::StartsWith(Box::new(self), pat.to_owned())
    }
    /// `self LIKE '%pat'`
    pub fn ends_with(self, pat: &str) -> Expr {
        Expr::EndsWith(Box::new(self), pat.to_owned())
    }
    /// `self IN (…)`
    pub fn in_list(self, list: Vec<Scalar>) -> Expr {
        Expr::InList(Box::new(self), list)
    }
    /// `EXTRACT(YEAR FROM self)`
    pub fn year(self) -> Expr {
        Expr::Year(Box::new(self))
    }

    /// Resolve [`Expr::Col`] names to slots via `lookup`.
    pub fn resolve(&mut self, lookup: &dyn Fn(&str) -> usize) {
        match self {
            Expr::Col(name) => *self = Expr::Slot(lookup(name)),
            Expr::Slot(_) | Expr::Const(_) => {}
            Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(a, _, b) => {
                a.resolve(lookup);
                b.resolve(lookup);
            }
            Expr::Not(a)
            | Expr::IsNull(a)
            | Expr::IsNotNull(a)
            | Expr::Contains(a, _)
            | Expr::StartsWith(a, _)
            | Expr::EndsWith(a, _)
            | Expr::InList(a, _)
            | Expr::Year(a) => a.resolve(lookup),
        }
    }

    /// Evaluate against row `row` of `chunk`.
    pub fn eval(&self, chunk: &Chunk, row: usize) -> Scalar {
        self.eval_view(&(chunk, row))
    }

    /// Evaluate against a bare row of slot values.
    pub fn eval_row(&self, row: &[Scalar]) -> Scalar {
        self.eval_view(&row)
    }

    /// True if the expression evaluates to SQL TRUE for the bare row.
    #[inline]
    pub fn eval_row_bool(&self, row: &[Scalar]) -> bool {
        matches!(self.eval_row(row), Scalar::Bool(true))
    }

    fn eval_view<V: RowView>(&self, ctx: &V) -> Scalar {
        match self {
            Expr::Col(name) => panic!("unresolved column {name:?}"),
            Expr::Slot(i) => ctx.slot(*i).clone(),
            Expr::Const(c) => c.clone(),
            Expr::Cmp(a, op, b) => {
                let av = a.eval_view(ctx);
                let bv = b.eval_view(ctx);
                match av.compare(&bv) {
                    None => Scalar::Null,
                    Some(ord) => Scalar::Bool(match op {
                        CmpOp::Eq => ord == Ordering::Equal,
                        CmpOp::Ne => ord != Ordering::Equal,
                        CmpOp::Lt => ord == Ordering::Less,
                        CmpOp::Le => ord != Ordering::Greater,
                        CmpOp::Gt => ord == Ordering::Greater,
                        CmpOp::Ge => ord != Ordering::Less,
                    }),
                }
            }
            Expr::And(a, b) => match (a.eval_view(ctx), b.eval_view(ctx)) {
                (Scalar::Bool(false), _) | (_, Scalar::Bool(false)) => Scalar::Bool(false),
                (Scalar::Bool(true), Scalar::Bool(true)) => Scalar::Bool(true),
                _ => Scalar::Null,
            },
            Expr::Or(a, b) => match (a.eval_view(ctx), b.eval_view(ctx)) {
                (Scalar::Bool(true), _) | (_, Scalar::Bool(true)) => Scalar::Bool(true),
                (Scalar::Bool(false), Scalar::Bool(false)) => Scalar::Bool(false),
                _ => Scalar::Null,
            },
            Expr::Not(a) => match a.eval_view(ctx) {
                Scalar::Bool(b) => Scalar::Bool(!b),
                _ => Scalar::Null,
            },
            Expr::Arith(a, op, b) => {
                let av = a.eval_view(ctx);
                let bv = b.eval_view(ctx);
                if av.is_null() || bv.is_null() {
                    return Scalar::Null;
                }
                // Integer arithmetic when both sides are integers (except
                // division, which is float like the paper's price math).
                if let (Scalar::Int(x), Scalar::Int(y), false) = (&av, &bv, *op == ArithOp::Div) {
                    return Scalar::Int(match op {
                        ArithOp::Add => x.wrapping_add(*y),
                        ArithOp::Sub => x.wrapping_sub(*y),
                        ArithOp::Mul => x.wrapping_mul(*y),
                        ArithOp::Div => unreachable!(),
                    });
                }
                let (x, y) = match (av.as_f64(), bv.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Scalar::Null,
                };
                Scalar::Float(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Scalar::Null;
                        }
                        x / y
                    }
                })
            }
            Expr::IsNull(a) => Scalar::Bool(a.eval_view(ctx).is_null()),
            Expr::IsNotNull(a) => Scalar::Bool(!a.eval_view(ctx).is_null()),
            Expr::Contains(a, pat) => match a.eval_view(ctx) {
                Scalar::Str(s) => Scalar::Bool(s.contains(pat.as_str())),
                Scalar::Null => Scalar::Null,
                _ => Scalar::Null,
            },
            Expr::StartsWith(a, pat) => match a.eval_view(ctx) {
                Scalar::Str(s) => Scalar::Bool(s.starts_with(pat.as_str())),
                Scalar::Null => Scalar::Null,
                _ => Scalar::Null,
            },
            Expr::EndsWith(a, pat) => match a.eval_view(ctx) {
                Scalar::Str(s) => Scalar::Bool(s.ends_with(pat.as_str())),
                Scalar::Null => Scalar::Null,
                _ => Scalar::Null,
            },
            Expr::InList(a, list) => {
                let v = a.eval_view(ctx);
                if v.is_null() {
                    return Scalar::Null;
                }
                Scalar::Bool(list.iter().any(|x| v.group_eq(x)))
            }
            Expr::Year(a) => match a.eval_view(ctx) {
                Scalar::Timestamp(t) => {
                    let s = jt_core::format_timestamp(t);
                    Scalar::Int(s[..4].parse().expect("year digits"))
                }
                Scalar::Str(s) if s.len() >= 4 => match s[..4].parse() {
                    Ok(y) => Scalar::Int(y),
                    Err(_) => Scalar::Null,
                },
                _ => Scalar::Null,
            },
        }
    }

    /// True if the expression evaluates to SQL TRUE for the row.
    #[inline]
    pub fn eval_bool(&self, chunk: &Chunk, row: usize) -> bool {
        matches!(self.eval(chunk, row), Scalar::Bool(true))
    }

    /// Batch-at-a-time evaluation: `cols[slot]` holds the gathered values of
    /// that slot for `len` selected rows; the result is one value per row.
    /// Semantics match [`Expr::eval_row`] exactly — this is the residual
    /// interpreter of the vectorized scan, used for conjuncts no typed
    /// kernel covers.
    pub fn eval_batch(&self, cols: &[Vec<Scalar>], len: usize) -> Vec<Scalar> {
        match self {
            Expr::Col(name) => panic!("unresolved column {name:?}"),
            Expr::Slot(i) => cols[*i].clone(),
            Expr::Const(c) => vec![c.clone(); len],
            Expr::Cmp(a, op, b) => {
                let av = a.eval_batch(cols, len);
                let bv = b.eval_batch(cols, len);
                av.iter()
                    .zip(&bv)
                    .map(|(x, y)| match x.compare(y) {
                        None => Scalar::Null,
                        Some(ord) => Scalar::Bool(match op {
                            CmpOp::Eq => ord == Ordering::Equal,
                            CmpOp::Ne => ord != Ordering::Equal,
                            CmpOp::Lt => ord == Ordering::Less,
                            CmpOp::Le => ord != Ordering::Greater,
                            CmpOp::Gt => ord == Ordering::Greater,
                            CmpOp::Ge => ord != Ordering::Less,
                        }),
                    })
                    .collect()
            }
            Expr::And(a, b) => {
                let av = a.eval_batch(cols, len);
                let bv = b.eval_batch(cols, len);
                av.into_iter()
                    .zip(bv)
                    .map(|p| match p {
                        (Scalar::Bool(false), _) | (_, Scalar::Bool(false)) => Scalar::Bool(false),
                        (Scalar::Bool(true), Scalar::Bool(true)) => Scalar::Bool(true),
                        _ => Scalar::Null,
                    })
                    .collect()
            }
            Expr::Or(a, b) => {
                let av = a.eval_batch(cols, len);
                let bv = b.eval_batch(cols, len);
                av.into_iter()
                    .zip(bv)
                    .map(|p| match p {
                        (Scalar::Bool(true), _) | (_, Scalar::Bool(true)) => Scalar::Bool(true),
                        (Scalar::Bool(false), Scalar::Bool(false)) => Scalar::Bool(false),
                        _ => Scalar::Null,
                    })
                    .collect()
            }
            Expr::Not(a) => a
                .eval_batch(cols, len)
                .into_iter()
                .map(|v| match v {
                    Scalar::Bool(b) => Scalar::Bool(!b),
                    _ => Scalar::Null,
                })
                .collect(),
            Expr::Arith(..) | Expr::Year(_) => {
                // Rare in filters: reuse the scalar evaluator row by row via
                // a one-row view to keep the semantics in a single place.
                let mut row_buf: Vec<Scalar> = vec![Scalar::Null; cols.len()];
                (0..len)
                    .map(|r| {
                        for (slot, col) in cols.iter().enumerate() {
                            if !col.is_empty() {
                                row_buf[slot] = col[r].clone();
                            }
                        }
                        self.eval_row(&row_buf)
                    })
                    .collect()
            }
            Expr::IsNull(a) => a
                .eval_batch(cols, len)
                .into_iter()
                .map(|v| Scalar::Bool(v.is_null()))
                .collect(),
            Expr::IsNotNull(a) => a
                .eval_batch(cols, len)
                .into_iter()
                .map(|v| Scalar::Bool(!v.is_null()))
                .collect(),
            Expr::Contains(a, pat) => a
                .eval_batch(cols, len)
                .into_iter()
                .map(|v| match v {
                    Scalar::Str(s) => Scalar::Bool(s.contains(pat.as_str())),
                    _ => Scalar::Null,
                })
                .collect(),
            Expr::StartsWith(a, pat) => a
                .eval_batch(cols, len)
                .into_iter()
                .map(|v| match v {
                    Scalar::Str(s) => Scalar::Bool(s.starts_with(pat.as_str())),
                    _ => Scalar::Null,
                })
                .collect(),
            Expr::EndsWith(a, pat) => a
                .eval_batch(cols, len)
                .into_iter()
                .map(|v| match v {
                    Scalar::Str(s) => Scalar::Bool(s.ends_with(pat.as_str())),
                    _ => Scalar::Null,
                })
                .collect(),
            Expr::InList(a, list) => a
                .eval_batch(cols, len)
                .into_iter()
                .map(|v| {
                    if v.is_null() {
                        Scalar::Null
                    } else {
                        Scalar::Bool(list.iter().any(|x| v.group_eq(x)))
                    }
                })
                .collect(),
        }
    }

    /// All slots this expression reads.
    pub fn referenced_slots(&self) -> HashSet<usize> {
        match self {
            Expr::Slot(i) => HashSet::from([*i]),
            Expr::Col(_) | Expr::Const(_) => HashSet::new(),
            Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                let mut s = a.referenced_slots();
                s.extend(b.referenced_slots());
                s
            }
            Expr::Not(a)
            | Expr::IsNull(a)
            | Expr::IsNotNull(a)
            | Expr::Contains(a, _)
            | Expr::StartsWith(a, _)
            | Expr::EndsWith(a, _)
            | Expr::InList(a, _)
            | Expr::Year(a) => a.referenced_slots(),
        }
    }

    /// Collect every [`Expr::Col`] name this expression reads into `out`
    /// (sorted set — deterministic iteration for the planner's pushdown
    /// and pruning decisions).
    pub fn referenced_cols(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Col(name) => {
                out.insert(name.clone());
            }
            Expr::Slot(_) | Expr::Const(_) => {}
            Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(a, _, b) => {
                a.referenced_cols(out);
                b.referenced_cols(out);
            }
            Expr::Not(a)
            | Expr::IsNull(a)
            | Expr::IsNotNull(a)
            | Expr::Contains(a, _)
            | Expr::StartsWith(a, _)
            | Expr::EndsWith(a, _)
            | Expr::InList(a, _)
            | Expr::Year(a) => a.referenced_cols(out),
        }
    }

    /// Slots where a null value makes this predicate non-true — the §4.8
    /// analysis ("null values are skipped or evaluated as false").
    pub fn null_rejecting_slots(&self) -> HashSet<usize> {
        match self {
            Expr::Slot(i) => HashSet::from([*i]),
            Expr::Col(_) | Expr::Const(_) => HashSet::new(),
            // A comparison is non-true whenever either operand is null.
            Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) => {
                let mut s = a.null_rejecting_slots();
                s.extend(b.null_rejecting_slots());
                s
            }
            // AND rejects what either side rejects; OR only what both do.
            Expr::And(a, b) => {
                let mut s = a.null_rejecting_slots();
                s.extend(b.null_rejecting_slots());
                s
            }
            Expr::Or(a, b) => a
                .null_rejecting_slots()
                .intersection(&b.null_rejecting_slots())
                .copied()
                .collect(),
            // NOT and IS NULL can turn null into TRUE: nothing is rejected.
            Expr::Not(_) | Expr::IsNull(_) => HashSet::new(),
            Expr::IsNotNull(a)
            | Expr::Contains(a, _)
            | Expr::StartsWith(a, _)
            | Expr::EndsWith(a, _)
            | Expr::InList(a, _)
            | Expr::Year(a) => a.null_rejecting_slots(),
        }
    }
}

/// SQL-flavoured rendering for logical-plan display (`EXPLAIN`).
impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Col(name) => write!(f, "{name}"),
            Expr::Slot(i) => write!(f, "#{i}"),
            Expr::Const(c) => write!(f, "{}", c.display()),
            Expr::Cmp(a, op, b) => {
                let op = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {op} {b})")
            }
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::Arith(a, op, b) => {
                let op = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({a} {op} {b})")
            }
            Expr::IsNull(a) => write!(f, "({a} IS NULL)"),
            Expr::IsNotNull(a) => write!(f, "({a} IS NOT NULL)"),
            Expr::Contains(a, p) => write!(f, "({a} LIKE '%{p}%')"),
            Expr::StartsWith(a, p) => write!(f, "({a} LIKE '{p}%')"),
            Expr::EndsWith(a, p) => write!(f, "({a} LIKE '%{p}')"),
            Expr::InList(a, list) => {
                write!(f, "({a} IN (")?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v.display())?;
                }
                write!(f, "))")
            }
            Expr::Year(a) => write!(f, "EXTRACT(YEAR FROM {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> Chunk {
        Chunk {
            columns: vec![
                vec![Scalar::Int(5), Scalar::Null, Scalar::Int(10)],
                vec![Scalar::str("abc"), Scalar::str("xbc"), Scalar::Null],
            ],
        }
    }

    #[test]
    fn comparisons_and_three_valued_logic() {
        let c = chunk();
        let e = Expr::Slot(0).gt(lit(4));
        assert!(e.eval_bool(&c, 0));
        assert!(!e.eval_bool(&c, 1), "null > 4 is unknown, not true");
        // NOT(null) is null, not true.
        let ne = Expr::Slot(0).gt(lit(4)).not();
        assert!(!ne.eval_bool(&c, 1));
        // OR with one true side wins over null.
        let or = Expr::Slot(0).gt(lit(4)).or(lit(1).eq(lit(1)));
        assert!(or.eval_bool(&c, 1));
    }

    #[test]
    fn arithmetic() {
        let c = chunk();
        assert_eq!(Expr::Slot(0).add(lit(3)).eval(&c, 0).as_i64(), Some(8));
        assert_eq!(Expr::Slot(0).mul(lit(2)).eval(&c, 2).as_i64(), Some(20));
        assert!(Expr::Slot(0).add(lit(3)).eval(&c, 1).is_null());
        assert_eq!(lit(7).div(lit(2)).eval(&c, 0).as_f64(), Some(3.5));
        assert!(lit(7).div(lit(0)).eval(&c, 0).is_null());
        assert_eq!(lit_f64(1.5).add(lit(1)).eval(&c, 0).as_f64(), Some(2.5));
    }

    #[test]
    fn string_predicates() {
        let c = chunk();
        assert!(Expr::Slot(1).contains("bc").eval_bool(&c, 0));
        assert!(Expr::Slot(1).starts_with("x").eval_bool(&c, 1));
        assert!(!Expr::Slot(1).contains("zz").eval_bool(&c, 0));
        assert!(!Expr::Slot(1).contains("bc").eval_bool(&c, 2), "null");
    }

    #[test]
    fn null_tests() {
        let c = chunk();
        assert!(Expr::Slot(0).is_null().eval_bool(&c, 1));
        assert!(Expr::Slot(0).is_not_null().eval_bool(&c, 0));
    }

    #[test]
    fn in_list() {
        let c = chunk();
        let e = Expr::Slot(0).in_list(vec![Scalar::Int(5), Scalar::Int(7)]);
        assert!(e.eval_bool(&c, 0));
        assert!(!e.eval_bool(&c, 2));
        assert!(!e.eval_bool(&c, 1), "null IN (...) is unknown");
    }

    #[test]
    fn year_extraction() {
        let c = Chunk {
            columns: vec![vec![
                Scalar::Timestamp(jt_core::parse_timestamp("1994-03-15").unwrap()),
                Scalar::str("1995-12-01"),
            ]],
        };
        let e = Expr::Slot(0).year();
        assert_eq!(e.eval(&c, 0).as_i64(), Some(1994));
        assert_eq!(e.eval(&c, 1).as_i64(), Some(1995), "string fallback");
    }

    #[test]
    fn null_rejection_analysis() {
        let p = Expr::Slot(0).gt(lit(1)).and(Expr::Slot(1).eq(lit_str("x")));
        let s = p.null_rejecting_slots();
        assert!(s.contains(&0) && s.contains(&1));
        let p = Expr::Slot(0).gt(lit(1)).or(Expr::Slot(1).eq(lit_str("x")));
        assert!(
            p.null_rejecting_slots().is_empty(),
            "OR rejects only the intersection"
        );
        let p = Expr::Slot(0).is_null();
        assert!(p.null_rejecting_slots().is_empty(), "IS NULL accepts nulls");
        let p = Expr::Slot(0).gt(lit(1)).not();
        assert!(p.null_rejecting_slots().is_empty(), "NOT can invert");
        let p = Expr::Slot(0).is_not_null();
        assert_eq!(p.null_rejecting_slots(), HashSet::from([0]));
    }

    #[test]
    fn eval_batch_matches_eval_row() {
        let cols: Vec<Vec<Scalar>> = vec![
            vec![
                Scalar::Int(5),
                Scalar::Null,
                Scalar::Int(10),
                Scalar::Float(2.5),
            ],
            vec![
                Scalar::str("abc"),
                Scalar::str("xbc"),
                Scalar::Null,
                Scalar::str("1994-06-01"),
            ],
        ];
        let exprs = [
            Expr::Slot(0).gt(lit(4)),
            Expr::Slot(0)
                .gt(lit(4))
                .not()
                .or(Expr::Slot(1).contains("bc")),
            Expr::Slot(0).add(lit(1)).le(lit_f64(6.0)),
            Expr::Slot(1).is_null().and(Expr::Slot(0).is_not_null()),
            Expr::Slot(0).in_list(vec![Scalar::Int(5), Scalar::Float(2.5)]),
            Expr::Slot(1).year().eq(lit(1994)),
            Expr::Slot(1)
                .starts_with("x")
                .or(Expr::Slot(1).ends_with("c")),
        ];
        for e in exprs {
            let batch = e.eval_batch(&cols, 4);
            for r in 0..4 {
                let row: Vec<Scalar> = cols.iter().map(|c| c[r].clone()).collect();
                let scalar = e.eval_row(&row);
                assert!(
                    batch[r].group_eq(&scalar) || (batch[r].is_null() && scalar.is_null()),
                    "{e:?} row {r}: batch {:?} vs scalar {scalar:?}",
                    batch[r]
                );
            }
        }
    }

    #[test]
    fn resolve_names() {
        let mut e = col("a").gt(col("b"));
        e.resolve(&|name| if name == "a" { 0 } else { 1 });
        let c = chunk();
        assert!(!e.eval_bool(&c, 0), "5 > \"abc\" is incomparable");
    }

    #[test]
    fn display_and_referenced_cols() {
        let e = col("a").add(col("b")).gt(lit(3)).and(col("c").is_null());
        assert_eq!(e.to_string(), "(((a + b) > 3) AND (c IS NULL))");
        let mut cols = std::collections::BTreeSet::new();
        e.referenced_cols(&mut cols);
        assert_eq!(
            cols.into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
        assert_eq!(
            Expr::Slot(2).in_list(vec![Scalar::Int(1)]).to_string(),
            "(#2 IN (1))"
        );
    }
}
