//! The logical planner: an explicit plan IR between SQL and execution.
//!
//! [`LogicalPlan`] is a tree of relational operators built either by the
//! SQL compiler (`jt-sql`) or programmatically through [`LogicalBuilder`]
//! (mirroring the physical [`Query`] builder's API). An ordered pipeline of
//! named rewrite passes ([`Pass`]) transforms the canonical tree using the
//! tile statistics ([`CostModel`], paper §4.5–§4.6):
//!
//! 1. **predicate-pushdown** — split conjuncts of `Filter` nodes sitting on
//!    a join region and push each into the scan that owns all its columns.
//! 2. **projection-pushdown** — prune scan accesses nobody references
//!    (only when a `Project`/`Aggregate` sits above; otherwise the scan
//!    output *is* the query output).
//! 3. **join-reorder** — greedy reordering of the inner-join region by
//!    estimated output cardinality (`|A|·|B| / max(nd)` over HLL distinct
//!    counts, scan estimates from §4.6 static document sampling).
//! 4. **bound-propagation** — push `LIMIT`+`OFFSET` bounds into the sort
//!    (top-K), scans (early exit), and pure inner-join probe sides.
//!
//! Lowering ([`LogicalPlan::lower`]) turns the optimized tree back into a
//! physical [`Query`]; the physical executor then runs joins in the tree's
//! declaration order (its own runtime reordering remains available as a
//! separate knob). Every pass preserves results bit-for-bit — only costs
//! may change — which `tests/observability.rs` re-checks across all 22
//! TPC-H queries with each pass individually disabled.

use crate::access::Access;
use crate::agg::{Agg, AggKind};
use crate::cost::CostModel;
use crate::expr::Expr;
use crate::plan::Query;
use jt_core::{AccessType, Relation};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// IR
// ---------------------------------------------------------------------------

/// A logical plan node. The canonical tree produced by [`LogicalBuilder`]
/// (and the SQL compiler) has the spine
/// `Limit? → Offset? → Sort? → Project? → Filter* → Aggregate? → Filter* →
/// (SemiJoin|AntiJoin)* → join region (Join/Scan)`, which [`lower`] peels
/// back into a physical [`Query`]. Rewrite passes keep that shape.
///
/// [`lower`]: LogicalPlan::lower
#[derive(Debug, Clone)]
pub enum LogicalPlan<'a> {
    /// Leaf: scan a relation with pushed-down accesses, an optional pushed
    /// filter (referencing only this scan's access names), and an optional
    /// row bound (stop scanning once `limit_hint` rows are produced).
    Scan {
        name: String,
        rel: &'a Relation,
        accesses: Vec<Access>,
        filter: Option<Expr>,
        limit_hint: Option<usize>,
    },
    /// Row filter; below an `Aggregate` the predicate references access
    /// names, above one it references output slots (`HAVING`).
    Filter {
        input: Box<LogicalPlan<'a>>,
        predicate: Expr,
    },
    /// Projection; `visible` < `exprs.len()` marks trailing hidden columns
    /// (e.g. `ORDER BY` expressions not in the select list) that are
    /// dropped after the sort.
    Project {
        input: Box<LogicalPlan<'a>>,
        exprs: Vec<Expr>,
        visible: usize,
    },
    /// Inner equi-join on access-name pairs; empty `keys` is a cross join.
    /// `probe_bound` lets the probe side stop once that many output rows
    /// exist (valid only under a `LIMIT` with no reordering stage between).
    Join {
        left: Box<LogicalPlan<'a>>,
        right: Box<LogicalPlan<'a>>,
        keys: Vec<(String, String)>,
        probe_bound: Option<usize>,
    },
    /// `EXISTS` reduction: keep input rows with a match in `right`.
    SemiJoin {
        input: Box<LogicalPlan<'a>>,
        right: Box<LogicalPlan<'a>>,
        keys: Vec<(String, String)>,
    },
    /// `NOT EXISTS` reduction.
    AntiJoin {
        input: Box<LogicalPlan<'a>>,
        right: Box<LogicalPlan<'a>>,
        keys: Vec<(String, String)>,
    },
    /// Group-by + aggregates; output columns are keys then aggregates.
    Aggregate {
        input: Box<LogicalPlan<'a>>,
        keys: Vec<Expr>,
        aggs: Vec<Agg>,
    },
    /// Sort by output column indices; `bound` is the planner-provided
    /// top-K row bound (`None` = full sort).
    Sort {
        input: Box<LogicalPlan<'a>>,
        keys: Vec<(usize, bool)>,
        bound: Option<usize>,
    },
    /// Skip the first `n` rows.
    Offset {
        input: Box<LogicalPlan<'a>>,
        n: usize,
    },
    /// Keep only the first `n` rows.
    Limit {
        input: Box<LogicalPlan<'a>>,
        n: usize,
    },
}

/// Join flavours a [`LogicalBuilder`] clause can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClauseKind {
    Inner,
    Semi,
    Anti,
}

impl<'a> LogicalPlan<'a> {
    /// Start building a canonical plan scanning `rel` — the logical
    /// counterpart of [`Query::scan`], with the same builder surface.
    pub fn scan(name: &str, rel: &'a Relation) -> LogicalBuilder<'a> {
        LogicalBuilder {
            tables: vec![BuilderTable {
                name: name.to_owned(),
                rel,
                accesses: Vec::new(),
                filters: Vec::new(),
            }],
            joins: Vec::new(),
            post_filter: Vec::new(),
            group_by: Vec::new(),
            aggs: Vec::new(),
            having: None,
            select: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// Short operator label (diagnostics).
    fn label(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "scan",
            LogicalPlan::Filter { .. } => "filter",
            LogicalPlan::Project { .. } => "project",
            LogicalPlan::Join { .. } => "join",
            LogicalPlan::SemiJoin { .. } => "semi-join",
            LogicalPlan::AntiJoin { .. } => "anti-join",
            LogicalPlan::Aggregate { .. } => "aggregate",
            LogicalPlan::Sort { .. } => "sort",
            LogicalPlan::Offset { .. } => "offset",
            LogicalPlan::Limit { .. } => "limit",
        }
    }

    /// True for nodes that form the join region (the part predicate
    /// pushdown may push filters into).
    fn is_join_region(&self) -> bool {
        matches!(
            self,
            LogicalPlan::Scan { .. }
                | LogicalPlan::Join { .. }
                | LogicalPlan::SemiJoin { .. }
                | LogicalPlan::AntiJoin { .. }
        )
    }

    // -- lowering -----------------------------------------------------------

    /// Lower the logical tree into a physical [`Query`]. Scans and join
    /// clauses are emitted in tree order (post-order over the join region),
    /// so running the query with runtime join reordering disabled executes
    /// exactly the logical join order.
    pub fn lower(&self) -> Query<'a> {
        use LogicalPlan::*;
        let mut node = self;
        let mut limit = None;
        let mut offset = None;
        if let Limit { input, n } = node {
            limit = Some(*n);
            node = input.as_ref();
        }
        if let Offset { input, n } = node {
            offset = Some(*n);
            node = input.as_ref();
        }
        // Borrowed operator specs peeled off the spine during lowering.
        type SortSpec<'p> = (&'p [(usize, bool)], Option<usize>);
        type ReductionSpec<'p, 'a> = (ClauseKind, &'p LogicalPlan<'a>, &'p [(String, String)]);
        let mut sort: Option<SortSpec<'_>> = None;
        if let Sort { input, keys, bound } = node {
            sort = Some((keys, *bound));
            node = input.as_ref();
        }
        let mut project: Option<(&[Expr], usize)> = None;
        if let Project {
            input,
            exprs,
            visible,
        } = node
        {
            project = Some((exprs, *visible));
            node = input.as_ref();
        }
        let mut upper: Vec<&Expr> = Vec::new();
        while let Filter { input, predicate } = node {
            upper.push(predicate);
            node = input.as_ref();
        }
        let mut agg: Option<(&[Expr], &[Agg])> = None;
        let mut post: Vec<&Expr>;
        if let Aggregate { input, keys, aggs } = node {
            agg = Some((keys, aggs));
            node = input.as_ref();
            post = Vec::new();
            while let Filter { input, predicate } = node {
                post.push(predicate);
                node = input.as_ref();
            }
        } else {
            // No aggregate: the "upper" filters are plain post-join filters.
            post = std::mem::take(&mut upper);
        }
        let mut reductions: Vec<ReductionSpec<'_, 'a>> = Vec::new();
        loop {
            match node {
                SemiJoin { input, right, keys } => {
                    reductions.push((ClauseKind::Semi, right.as_ref(), keys));
                    node = input.as_ref();
                }
                AntiJoin { input, right, keys } => {
                    reductions.push((ClauseKind::Anti, right.as_ref(), keys));
                    node = input.as_ref();
                }
                _ => break,
            }
        }
        reductions.reverse(); // peeled top-down; re-emit in declaration order
        let root_bound = match node {
            Join { probe_bound, .. } => *probe_bound,
            _ => None,
        };
        let mut scans: Vec<&LogicalPlan<'a>> = Vec::new();
        let mut clauses: Vec<(String, String)> = Vec::new();
        flatten_region(node, &mut scans, &mut clauses);

        let mut q: Option<Query<'a>> = None;
        for s in &scans {
            q = Some(emit_scan(q, s));
        }
        // Reduction-side tables: emit each distinct table once (two semi
        // clauses may share a right table).
        let mut emitted: Vec<&str> = scans.iter().map(|s| scan_name(s)).collect();
        for (_, right, _) in &reductions {
            let name = scan_name(right);
            if !emitted.contains(&name) {
                q = Some(emit_scan(q, right));
                emitted.push(name);
            }
        }
        let mut q = q.expect("logical plan has no scans");
        for (l, r) in &clauses {
            q = q.on(l, r);
        }
        for (kind, _, keys) in &reductions {
            for (l, r) in keys.iter() {
                q = match kind {
                    ClauseKind::Semi => q.semi_on(l, r),
                    ClauseKind::Anti => q.anti_on(l, r),
                    ClauseKind::Inner => unreachable!(),
                };
            }
        }
        if let Some(p) = and_all_ref(&post) {
            q = q.filter_joined(p);
        }
        if let Some((keys, aggs)) = agg {
            q = q.aggregate(keys.to_vec(), aggs.to_vec());
        }
        if let Some(h) = and_all_ref(&upper) {
            q = q.having(h);
        }
        if let Some((exprs, visible)) = project {
            let n = exprs.len();
            q = q.select(exprs.to_vec());
            if visible < n {
                q = q.visible(visible);
            }
        }
        if let Some((keys, bound)) = sort {
            for &(c, d) in keys {
                q = q.order_by(c, d);
            }
            q = q.with_sort_bound(bound);
        }
        if let Some(b) = root_bound {
            q = q.probe_bound(b);
        }
        if let Some(n) = offset {
            q = q.offset(n);
        }
        if let Some(n) = limit {
            q = q.limit(n);
        }
        q
    }

    // -- rendering ----------------------------------------------------------

    /// Render the tree as an indented operator listing with cardinality
    /// estimates from the default [`CostModel`].
    pub fn render(&self) -> String {
        self.render_with(&CostModel::default())
    }

    /// Render with an explicit cost model (estimates do §4.6 document
    /// sampling, so rendering is not free — keep it off hot paths).
    pub fn render_with(&self, cost: &CostModel) -> String {
        let mut out = String::new();
        self.render_into(cost, 0, &mut out);
        out
    }

    fn render_into(&self, cost: &CostModel, indent: usize, out: &mut String) {
        for _ in 0..indent {
            out.push(' ');
        }
        match self {
            LogicalPlan::Scan {
                name,
                rel,
                accesses,
                filter,
                limit_hint,
            } => {
                let names: Vec<&str> = accesses.iter().map(|a| a.name.as_str()).collect();
                let _ = write!(
                    out,
                    "scan {name} rows={} est={:.0} accesses=[{}]",
                    rel.row_count(),
                    self.estimate(cost),
                    names.join(", ")
                );
                if let Some(f) = filter {
                    let _ = write!(out, " filter={f}");
                }
                if let Some(h) = limit_hint {
                    let _ = write!(out, " limit-hint={h}");
                }
                out.push('\n');
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "filter {predicate}");
                input.render_into(cost, indent + 2, out);
            }
            LogicalPlan::Project {
                input,
                exprs,
                visible,
            } => {
                let items: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                let _ = write!(out, "project [{}]", items.join(", "));
                if *visible < exprs.len() {
                    let _ = write!(out, " visible={visible}");
                }
                out.push('\n');
                input.render_into(cost, indent + 2, out);
            }
            LogicalPlan::Join {
                left,
                right,
                keys,
                probe_bound,
            } => {
                let _ = write!(
                    out,
                    "join [{}] (est {:.0})",
                    render_keys(keys),
                    self.estimate(cost)
                );
                if let Some(b) = probe_bound {
                    let _ = write!(out, " probe-bound={b}");
                }
                out.push('\n');
                left.render_into(cost, indent + 2, out);
                right.render_into(cost, indent + 2, out);
            }
            LogicalPlan::SemiJoin { input, right, keys } => {
                let _ = writeln!(out, "semi-join [{}]", render_keys(keys));
                input.render_into(cost, indent + 2, out);
                right.render_into(cost, indent + 2, out);
            }
            LogicalPlan::AntiJoin { input, right, keys } => {
                let _ = writeln!(out, "anti-join [{}]", render_keys(keys));
                input.render_into(cost, indent + 2, out);
                right.render_into(cost, indent + 2, out);
            }
            LogicalPlan::Aggregate { input, keys, aggs } => {
                let ks: Vec<String> = keys.iter().map(|e| e.to_string()).collect();
                let ags: Vec<String> = aggs.iter().map(render_agg).collect();
                let _ = writeln!(
                    out,
                    "aggregate keys=[{}] aggs=[{}]",
                    ks.join(", "),
                    ags.join(", ")
                );
                input.render_into(cost, indent + 2, out);
            }
            LogicalPlan::Sort { input, keys, bound } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|&(c, d)| {
                        if d {
                            format!("{c} desc")
                        } else {
                            c.to_string()
                        }
                    })
                    .collect();
                let _ = write!(out, "sort keys=[{}]", ks.join(", "));
                if let Some(b) = bound {
                    let _ = write!(out, " bound={b}");
                }
                out.push('\n');
                input.render_into(cost, indent + 2, out);
            }
            LogicalPlan::Offset { input, n } => {
                let _ = writeln!(out, "offset {n}");
                input.render_into(cost, indent + 2, out);
            }
            LogicalPlan::Limit { input, n } => {
                let _ = writeln!(out, "limit {n}");
                input.render_into(cost, indent + 2, out);
            }
        }
    }

    /// Estimated output cardinality of this node (scans: §4.6 sampled; inner
    /// joins: `|A|·|B| / max(nd)` over HLL sketches; reductions and filters
    /// pass their input estimate through — they only shrink).
    fn estimate(&self, cost: &CostModel) -> f64 {
        match self {
            LogicalPlan::Scan {
                rel,
                accesses,
                filter,
                ..
            } => cost.scan_rows(rel, accesses, filter.as_ref()),
            LogicalPlan::Join {
                left, right, keys, ..
            } => {
                let l = left.estimate(cost);
                let r = right.estimate(cost);
                match keys.first() {
                    None => l * r,
                    Some((lk, rk)) => {
                        let nd = match (find_access(left, lk), find_access(right, rk)) {
                            (Some((lrel, lp)), Some((rrel, rp))) => {
                                cost.join_key_distinct(lrel, &lp, rrel, &rp)
                            }
                            _ => 1.0,
                        };
                        cost.join_output(l, r, nd)
                    }
                }
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::SemiJoin { input, .. }
            | LogicalPlan::AntiJoin { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Offset { input, .. }
            | LogicalPlan::Limit { input, .. } => input.estimate(cost),
            LogicalPlan::Aggregate { input, .. } => input.estimate(cost),
        }
    }
}

fn render_keys(keys: &[(String, String)]) -> String {
    if keys.is_empty() {
        return "cross".to_owned();
    }
    keys.iter()
        .map(|(l, r)| format!("{l} = {r}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_agg(a: &Agg) -> String {
    match a.kind {
        AggKind::CountStar => "count(*)".to_owned(),
        AggKind::Count => format!("count({})", a.expr),
        AggKind::CountDistinct => format!("count(distinct {})", a.expr),
        AggKind::Sum => format!("sum({})", a.expr),
        AggKind::Avg => format!("avg({})", a.expr),
        AggKind::Min => format!("min({})", a.expr),
        AggKind::Max => format!("max({})", a.expr),
    }
}

fn scan_name<'p>(node: &'p LogicalPlan<'_>) -> &'p str {
    match node {
        LogicalPlan::Scan { name, .. } => name,
        other => panic!("expected scan, found {}", other.label()),
    }
}

fn emit_scan<'a>(q: Option<Query<'a>>, scan: &LogicalPlan<'a>) -> Query<'a> {
    let LogicalPlan::Scan {
        name,
        rel,
        accesses,
        filter,
        limit_hint,
    } = scan
    else {
        panic!("expected scan, found {}", scan.label());
    };
    let mut q = match q {
        Some(q) => q.join(name, rel),
        None => Query::scan(name, rel),
    };
    for a in accesses {
        q = q.access_path(&a.name, a.path.clone(), a.ty);
    }
    if let Some(f) = filter {
        q = q.filter(f.clone());
    }
    if let Some(h) = limit_hint {
        q = q.scan_bound(*h);
    }
    q
}

/// Post-order flatten of a join region into scans + equi-join clauses.
fn flatten_region<'p, 'a>(
    node: &'p LogicalPlan<'a>,
    scans: &mut Vec<&'p LogicalPlan<'a>>,
    clauses: &mut Vec<(String, String)>,
) {
    match node {
        LogicalPlan::Scan { .. } => scans.push(node),
        LogicalPlan::Join {
            left, right, keys, ..
        } => {
            flatten_region(left, scans, clauses);
            flatten_region(right, scans, clauses);
            clauses.extend(keys.iter().cloned());
        }
        other => panic!("join region contains unexpected {} node", other.label()),
    }
}

/// Consuming flatten, for rebuild during join reordering.
fn flatten_owned<'a>(
    node: LogicalPlan<'a>,
    scans: &mut Vec<LogicalPlan<'a>>,
    clauses: &mut Vec<(String, String)>,
) {
    match node {
        LogicalPlan::Scan { .. } => scans.push(node),
        LogicalPlan::Join {
            left, right, keys, ..
        } => {
            flatten_owned(*left, scans, clauses);
            flatten_owned(*right, scans, clauses);
            clauses.extend(keys);
        }
        other => panic!("join region contains unexpected {} node", other.label()),
    }
}

/// Conjunction of borrowed predicates (left fold, declaration order).
fn and_all_ref(exprs: &[&Expr]) -> Option<Expr> {
    let mut it = exprs.iter();
    let first = (*it.next()?).clone();
    Some(it.fold(first, |acc, e| acc.and((*e).clone())))
}

/// Conjunction of owned predicates (left fold, declaration order).
fn and_all(exprs: Vec<Expr>) -> Option<Expr> {
    let mut it = exprs.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, e| acc.and(e)))
}

/// Flatten nested `AND`s into a conjunct list.
fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(a, b) => {
            split_conjuncts(*a, out);
            split_conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

/// Locate the relation + dotted path behind an access name anywhere in the
/// subtree (for join-key distinct-count lookups).
fn find_access<'a>(node: &LogicalPlan<'a>, name: &str) -> Option<(&'a Relation, String)> {
    let mut found = None;
    for_each_scan(node, &mut |scan| {
        if found.is_some() {
            return;
        }
        if let LogicalPlan::Scan { rel, accesses, .. } = scan {
            if let Some(a) = accesses.iter().find(|a| a.name == name) {
                found = Some((*rel, a.path.to_string()));
            }
        }
    });
    found
}

/// Visit every scan in the subtree in a fixed depth-first order.
fn for_each_scan<'p, 'a>(node: &'p LogicalPlan<'a>, f: &mut dyn FnMut(&'p LogicalPlan<'a>)) {
    match node {
        LogicalPlan::Scan { .. } => f(node),
        LogicalPlan::Join { left, right, .. } => {
            for_each_scan(left, f);
            for_each_scan(right, f);
        }
        LogicalPlan::SemiJoin { input, right, .. } | LogicalPlan::AntiJoin { input, right, .. } => {
            for_each_scan(input, f);
            for_each_scan(right, f);
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Offset { input, .. }
        | LogicalPlan::Limit { input, .. } => for_each_scan(input, f),
    }
}

/// Mutable twin of [`for_each_scan`]; both traverse in the same order, so
/// scan ordinals observed by one are valid for the other.
fn for_each_scan_mut<'a>(node: &mut LogicalPlan<'a>, f: &mut dyn FnMut(&mut LogicalPlan<'a>)) {
    match node {
        LogicalPlan::Scan { .. } => f(node),
        LogicalPlan::Join { left, right, .. } => {
            for_each_scan_mut(left, f);
            for_each_scan_mut(right, f);
        }
        LogicalPlan::SemiJoin { input, right, .. } | LogicalPlan::AntiJoin { input, right, .. } => {
            for_each_scan_mut(input, f);
            for_each_scan_mut(right, f);
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Offset { input, .. }
        | LogicalPlan::Limit { input, .. } => for_each_scan_mut(input, f),
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

struct BuilderTable<'a> {
    name: String,
    rel: &'a Relation,
    accesses: Vec<Access>,
    filters: Vec<Expr>,
}

struct BuilderClause {
    left: String,
    right: String,
    kind: ClauseKind,
}

/// Builds the *canonical* [`LogicalPlan`] — same surface as the physical
/// [`Query`] builder, so call sites migrate by swapping `Query::scan` for
/// `LogicalPlan::scan` and appending `.build()`. Filters land in one
/// canonical `Filter` node above the join region (reduction-side tables
/// excepted — their filters must stay in the scan, as those columns never
/// appear in the joined row); the rewrite passes do the pushing.
pub struct LogicalBuilder<'a> {
    tables: Vec<BuilderTable<'a>>,
    joins: Vec<BuilderClause>,
    post_filter: Vec<Expr>,
    group_by: Vec<Expr>,
    aggs: Vec<Agg>,
    having: Option<Expr>,
    select: Option<(Vec<Expr>, Option<usize>)>,
    order_by: Vec<(usize, bool)>,
    limit: Option<usize>,
    offset: Option<usize>,
}

impl<'a> LogicalBuilder<'a> {
    /// Push down an access on the current table; slot name = dotted path.
    pub fn access(self, path: &str, ty: AccessType) -> Self {
        self.access_as(path, path, ty)
    }

    /// Push down an access with an explicit slot name.
    pub fn access_as(mut self, name: &str, path: &str, ty: AccessType) -> Self {
        let t = self.tables.last_mut().expect("scan first");
        t.accesses.push(Access::new(name, path, ty));
        self
    }

    /// Push down an access with a pre-built key path.
    pub fn access_path(mut self, name: &str, path: jt_core::KeyPath, ty: AccessType) -> Self {
        let t = self.tables.last_mut().expect("scan first");
        t.accesses.push(Access {
            name: name.to_owned(),
            path,
            ty,
        });
        self
    }

    /// Filter on the current table (may reference only its access names).
    pub fn filter(mut self, expr: Expr) -> Self {
        let t = self.tables.last_mut().expect("scan first");
        split_conjuncts(expr, &mut t.filters);
        self
    }

    /// Add another table; subsequent `access`/`filter` calls target it.
    pub fn join(mut self, name: &str, rel: &'a Relation) -> Self {
        self.tables.push(BuilderTable {
            name: name.to_owned(),
            rel,
            accesses: Vec::new(),
            filters: Vec::new(),
        });
        self
    }

    /// Inner equi-join condition between two access names.
    pub fn on(mut self, left: &str, right: &str) -> Self {
        self.joins.push(BuilderClause {
            left: left.to_owned(),
            right: right.to_owned(),
            kind: ClauseKind::Inner,
        });
        self
    }

    /// Semi-join (`EXISTS`) against the clause's right-side table.
    pub fn semi_on(mut self, left: &str, right: &str) -> Self {
        self.joins.push(BuilderClause {
            left: left.to_owned(),
            right: right.to_owned(),
            kind: ClauseKind::Semi,
        });
        self
    }

    /// Anti-join (`NOT EXISTS`).
    pub fn anti_on(mut self, left: &str, right: &str) -> Self {
        self.joins.push(BuilderClause {
            left: left.to_owned(),
            right: right.to_owned(),
            kind: ClauseKind::Anti,
        });
        self
    }

    /// Filter evaluated after all joins (cross-table predicates).
    pub fn filter_joined(mut self, expr: Expr) -> Self {
        split_conjuncts(expr, &mut self.post_filter);
        self
    }

    /// Group by `keys` computing `aggs`; output is keys then aggregates.
    pub fn aggregate(mut self, keys: Vec<Expr>, aggs: Vec<Agg>) -> Self {
        self.group_by = keys;
        self.aggs = aggs;
        self
    }

    /// Filter on aggregate output slots (`HAVING`).
    pub fn having(mut self, expr: Expr) -> Self {
        self.having = Some(expr);
        self
    }

    /// Final projection.
    pub fn select(mut self, exprs: Vec<Expr>) -> Self {
        self.select = Some((exprs, None));
        self
    }

    /// Final projection where only the first `visible` columns survive to
    /// the result (the rest exist for `ORDER BY` and are dropped after the
    /// sort).
    pub fn select_visible(mut self, exprs: Vec<Expr>, visible: usize) -> Self {
        self.select = Some((exprs, Some(visible)));
        self
    }

    /// Sort the final output by column index.
    pub fn order_by(mut self, col: usize, desc: bool) -> Self {
        self.order_by.push((col, desc));
        self
    }

    /// Keep only the first `n` rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Skip the first `n` rows (applied before the limit).
    pub fn offset(mut self, n: usize) -> Self {
        self.offset = Some(n);
        self
    }

    fn owner(&self, name: &str) -> usize {
        self.tables
            .iter()
            .position(|t| t.accesses.iter().any(|a| a.name == name))
            .unwrap_or_else(|| panic!("unknown access name {name:?}"))
    }

    /// Assemble the canonical tree. Inner joins fold left-deep in table
    /// declaration order; main-table filters collect into one `Filter` node
    /// above the reduction stack (predicate pushdown moves them down);
    /// reduction-side filters stay in their scans.
    pub fn build(self) -> LogicalPlan<'a> {
        // Which tables only feed semi/anti joins?
        let mut reduction: Vec<bool> = vec![false; self.tables.len()];
        for j in &self.joins {
            if j.kind != ClauseKind::Inner {
                reduction[self.owner(&j.right)] = true;
            }
        }
        for j in &self.joins {
            if j.kind == ClauseKind::Inner {
                assert!(
                    !reduction[self.owner(&j.left)] && !reduction[self.owner(&j.right)],
                    "inner join on a semi/anti reduction table is not supported by the logical builder"
                );
            }
        }
        // Per-table scan nodes. Reduction tables keep their filters (those
        // columns never reach the joined row); main-table filters go to the
        // canonical Filter node above.
        let mut pending: Vec<Expr> = Vec::new();
        let mut scans: Vec<Option<LogicalPlan<'a>>> = Vec::new();
        let mut reduction_scans: Vec<Option<LogicalPlan<'a>>> = Vec::new();
        let mut main: Vec<usize> = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            let node = LogicalPlan::Scan {
                name: t.name.clone(),
                rel: t.rel,
                accesses: t.accesses.clone(),
                filter: if reduction[ti] {
                    and_all(t.filters.clone())
                } else {
                    None
                },
                limit_hint: None,
            };
            if reduction[ti] {
                scans.push(None);
                reduction_scans.push(Some(node));
            } else {
                pending.extend(t.filters.iter().cloned());
                main.push(ti);
                scans.push(Some(node));
                reduction_scans.push(None);
            }
        }
        assert!(
            !main.is_empty(),
            "logical plan needs at least one main table"
        );
        let main_pos = |ti: usize| -> usize {
            main.iter()
                .position(|&m| m == ti)
                .expect("main table position")
        };
        // Attach inner clauses to the later of their two tables in the
        // left-deep fold; same-table pairs become ordinary predicates.
        let mut keys_at: Vec<Vec<(String, String)>> = vec![Vec::new(); main.len()];
        for j in self.joins.iter().filter(|j| j.kind == ClauseKind::Inner) {
            let (lp, rp) = (
                main_pos(self.owner(&j.left)),
                main_pos(self.owner(&j.right)),
            );
            if lp == rp {
                pending.push(crate::expr::col(&j.left).eq(crate::expr::col(&j.right)));
                continue;
            }
            // Orient so the left name lives in the already-folded subtree.
            let (key, at) = if lp < rp {
                ((j.left.clone(), j.right.clone()), rp)
            } else {
                ((j.right.clone(), j.left.clone()), lp)
            };
            keys_at[at].push(key);
        }
        assert!(keys_at[0].is_empty(), "clause attached before any join");
        let mut tree = scans[main[0]].take().expect("first main scan");
        for (pos, &ti) in main.iter().enumerate().skip(1) {
            tree = LogicalPlan::Join {
                left: Box::new(tree),
                right: Box::new(scans[ti].take().expect("main scan")),
                keys: std::mem::take(&mut keys_at[pos]),
                probe_bound: None,
            };
        }
        // Reduction stack in clause declaration order.
        for j in self.joins.iter().filter(|j| j.kind != ClauseKind::Inner) {
            let rt = self.owner(&j.right);
            let right = reduction_scans[rt]
                .as_ref()
                .expect("reduction scan")
                .clone();
            let keys = vec![(j.left.clone(), j.right.clone())];
            tree = match j.kind {
                ClauseKind::Semi => LogicalPlan::SemiJoin {
                    input: Box::new(tree),
                    right: Box::new(right),
                    keys,
                },
                ClauseKind::Anti => LogicalPlan::AntiJoin {
                    input: Box::new(tree),
                    right: Box::new(right),
                    keys,
                },
                ClauseKind::Inner => unreachable!(),
            };
        }
        pending.extend(self.post_filter);
        if let Some(p) = and_all(pending) {
            tree = LogicalPlan::Filter {
                input: Box::new(tree),
                predicate: p,
            };
        }
        if !self.group_by.is_empty() || !self.aggs.is_empty() {
            tree = LogicalPlan::Aggregate {
                input: Box::new(tree),
                keys: self.group_by,
                aggs: self.aggs,
            };
        }
        if let Some(h) = self.having {
            tree = LogicalPlan::Filter {
                input: Box::new(tree),
                predicate: h,
            };
        }
        if let Some((exprs, vis)) = self.select {
            let visible = vis.unwrap_or(exprs.len());
            tree = LogicalPlan::Project {
                input: Box::new(tree),
                exprs,
                visible,
            };
        }
        if !self.order_by.is_empty() {
            tree = LogicalPlan::Sort {
                input: Box::new(tree),
                keys: self.order_by,
                bound: None,
            };
        }
        if let Some(n) = self.offset {
            tree = LogicalPlan::Offset {
                input: Box::new(tree),
                n,
            };
        }
        if let Some(n) = self.limit {
            tree = LogicalPlan::Limit {
                input: Box::new(tree),
                n,
            };
        }
        tree
    }
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

/// A named rewrite pass. Passes always execute in the fixed [`Pass::ALL`]
/// order (the pass-ordering contract documented in DESIGN.md), regardless
/// of the order they appear in [`PlannerOptions::passes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Split `Filter` conjuncts and push single-table ones into scans.
    PredicatePushdown,
    /// Prune scan accesses nothing references.
    ProjectionPushdown,
    /// Greedy cost-based reordering of the inner-join region (§4.6).
    JoinReorder,
    /// Push `LIMIT`/`OFFSET` bounds into sort, scans, and probe sides.
    BoundPropagation,
}

impl Pass {
    /// Every pass, in execution order.
    pub const ALL: [Pass; 4] = [
        Pass::PredicatePushdown,
        Pass::ProjectionPushdown,
        Pass::JoinReorder,
        Pass::BoundPropagation,
    ];

    /// Stable pass name (CLI toggles, EXPLAIN section headers).
    pub fn name(&self) -> &'static str {
        match self {
            Pass::PredicatePushdown => "predicate-pushdown",
            Pass::ProjectionPushdown => "projection-pushdown",
            Pass::JoinReorder => "join-reorder",
            Pass::BoundPropagation => "bound-propagation",
        }
    }
}

/// Planner configuration: which passes run, and the cost model feeding
/// them. Replaces the old `ExecOptions::optimize_joins` flag (see
/// [`PlannerOptions::compat`] for the migration shim).
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Enabled passes (executed in [`Pass::ALL`] order).
    pub passes: Vec<Pass>,
    /// Statistics source for the cost-based passes.
    pub cost: CostModel,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            passes: Pass::ALL.to_vec(),
            cost: CostModel::default(),
        }
    }
}

impl PlannerOptions {
    /// No passes: lower the canonical tree as-is.
    pub fn none() -> Self {
        PlannerOptions {
            passes: Vec::new(),
            cost: CostModel::default(),
        }
    }

    /// Drop one pass.
    pub fn without(mut self, pass: Pass) -> Self {
        self.passes.retain(|p| *p != pass);
        self
    }

    /// Add one pass (idempotent).
    pub fn with(mut self, pass: Pass) -> Self {
        if !self.passes.contains(&pass) {
            self.passes.push(pass);
        }
        self
    }

    /// Back-compat shim for the former `ExecOptions::optimize_joins` flag,
    /// kept for one release: `true` is the default pass set, `false`
    /// disables only the join-reorder pass — pushdown and bound passes
    /// still run, so the "declaration order" baseline isolates join order
    /// exactly (the paper's Figure comparisons).
    pub fn compat(optimize_joins: bool) -> Self {
        if optimize_joins {
            PlannerOptions::default()
        } else {
            PlannerOptions::default().without(Pass::JoinReorder)
        }
    }

    fn enabled(&self, pass: Pass) -> bool {
        self.passes.contains(&pass)
    }
}

/// One pass's before/after record for `EXPLAIN`.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// [`Pass::name`].
    pub name: &'static str,
    /// Rendered tree before the pass.
    pub before: String,
    /// Rendered tree after the pass.
    pub after: String,
    /// Whether the pass changed the tree.
    pub changed: bool,
    /// Wall time of the rewrite itself (rendering excluded). Never
    /// printed in `EXPLAIN` output — the plan goldens must stay
    /// deterministic — but exported into query traces.
    pub wall: Duration,
}

/// One pass's wall time, the cheap sibling of [`PassReport`] for hot
/// paths that want planner timings without rendering the tree.
#[derive(Debug, Clone, Copy)]
pub struct PassTiming {
    /// [`Pass::name`].
    pub name: &'static str,
    /// Wall time of the rewrite.
    pub wall: Duration,
}

/// Run the enabled passes in canonical order. No rendering — this is the
/// hot path; `EXPLAIN` uses [`optimize_with_reports`].
pub fn optimize<'a>(plan: LogicalPlan<'a>, opts: &PlannerOptions) -> LogicalPlan<'a> {
    let mut plan = plan;
    for pass in Pass::ALL {
        if opts.enabled(pass) {
            plan = run_pass(plan, pass, &opts.cost);
        }
    }
    plan
}

/// Like [`optimize`], also timing each enabled pass. The only added cost
/// over [`optimize`] is one `Instant` pair per pass — what the query
/// service uses to put planner timings into every trace without paying
/// for rendering.
pub fn optimize_timed<'a>(
    plan: LogicalPlan<'a>,
    opts: &PlannerOptions,
) -> (LogicalPlan<'a>, Vec<PassTiming>) {
    let mut plan = plan;
    let mut timings = Vec::with_capacity(Pass::ALL.len());
    for pass in Pass::ALL {
        if opts.enabled(pass) {
            let t0 = Instant::now();
            plan = run_pass(plan, pass, &opts.cost);
            timings.push(PassTiming {
                name: pass.name(),
                wall: t0.elapsed(),
            });
        }
    }
    (plan, timings)
}

/// Like [`optimize`], also rendering the tree before/after every enabled
/// pass (each render re-samples cardinalities — not free; EXPLAIN only).
pub fn optimize_with_reports<'a>(
    plan: LogicalPlan<'a>,
    opts: &PlannerOptions,
) -> (LogicalPlan<'a>, Vec<PassReport>) {
    let mut plan = plan;
    let mut reports = Vec::new();
    for pass in Pass::ALL {
        if opts.enabled(pass) {
            let before = plan.render_with(&opts.cost);
            let t0 = Instant::now();
            plan = run_pass(plan, pass, &opts.cost);
            let wall = t0.elapsed();
            let after = plan.render_with(&opts.cost);
            reports.push(PassReport {
                name: pass.name(),
                changed: before != after,
                before,
                after,
                wall,
            });
        }
    }
    (plan, reports)
}

fn run_pass<'a>(plan: LogicalPlan<'a>, pass: Pass, cost: &CostModel) -> LogicalPlan<'a> {
    match pass {
        Pass::PredicatePushdown => predicate_pushdown(plan),
        Pass::ProjectionPushdown => projection_pushdown(plan),
        Pass::JoinReorder => join_reorder(plan, cost),
        Pass::BoundPropagation => bound_propagation(plan),
    }
}

// -- predicate pushdown -----------------------------------------------------

/// Push conjuncts of `Filter` nodes sitting directly on a join region into
/// the scan that owns all their referenced columns (access names are
/// globally unique, so each pushable conjunct has exactly one home).
/// Predicates only remove rows and every region operator preserves row
/// order, so results are bit-identical.
fn predicate_pushdown(plan: LogicalPlan<'_>) -> LogicalPlan<'_> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = predicate_pushdown(*input);
            if !input.is_join_region() {
                return LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                };
            }
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            let mut region = input;
            let mut rest = Vec::new();
            for c in conjuncts {
                if !try_push(&mut region, &c) {
                    rest.push(c);
                }
            }
            match and_all(rest) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(region),
                    predicate: p,
                },
                None => region,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            visible,
        } => LogicalPlan::Project {
            input: Box::new(predicate_pushdown(*input)),
            exprs,
            visible,
        },
        LogicalPlan::Aggregate { input, keys, aggs } => LogicalPlan::Aggregate {
            input: Box::new(predicate_pushdown(*input)),
            keys,
            aggs,
        },
        LogicalPlan::Sort { input, keys, bound } => LogicalPlan::Sort {
            input: Box::new(predicate_pushdown(*input)),
            keys,
            bound,
        },
        LogicalPlan::Offset { input, n } => LogicalPlan::Offset {
            input: Box::new(predicate_pushdown(*input)),
            n,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(predicate_pushdown(*input)),
            n,
        },
        // Join-region nodes with no Filter above: nothing to push.
        other => other,
    }
}

/// Push one conjunct into the single scan owning all its columns; false if
/// no scan qualifies (cross-table predicate, or no column references).
fn try_push(region: &mut LogicalPlan<'_>, conjunct: &Expr) -> bool {
    let mut cols = BTreeSet::new();
    conjunct.referenced_cols(&mut cols);
    if cols.is_empty() {
        return false;
    }
    let mut target: Option<usize> = None;
    {
        let mut ord = 0usize;
        for_each_scan(region, &mut |scan| {
            if let LogicalPlan::Scan { accesses, .. } = scan {
                if cols.iter().all(|c| accesses.iter().any(|a| &a.name == c)) {
                    target = Some(ord);
                }
            }
            ord += 1;
        });
    }
    let Some(target) = target else {
        return false;
    };
    let mut ord = 0usize;
    for_each_scan_mut(region, &mut |scan| {
        if ord == target {
            if let LogicalPlan::Scan { filter, .. } = scan {
                *filter = Some(match filter.take() {
                    Some(f) => f.and(conjunct.clone()),
                    None => conjunct.clone(),
                });
            }
        }
        ord += 1;
    });
    true
}

// -- projection pushdown ----------------------------------------------------

/// Prune scan accesses nothing references. Only runs when a `Project` or
/// `Aggregate` exists (otherwise the scan accesses *are* the query output),
/// and never prunes a scan to zero accesses (row counts flow through the
/// first column).
fn projection_pushdown(plan: LogicalPlan<'_>) -> LogicalPlan<'_> {
    let mut has_projection = false;
    walk(&plan, &mut |n| {
        if matches!(
            n,
            LogicalPlan::Project { .. } | LogicalPlan::Aggregate { .. }
        ) {
            has_projection = true;
        }
    });
    if !has_projection {
        return plan;
    }
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    walk(&plan, &mut |n| match n {
        LogicalPlan::Scan {
            filter: Some(f), ..
        } => {
            f.referenced_cols(&mut referenced);
        }
        LogicalPlan::Filter { predicate, .. } => predicate.referenced_cols(&mut referenced),
        LogicalPlan::Project { exprs, .. } => {
            for e in exprs {
                e.referenced_cols(&mut referenced);
            }
        }
        LogicalPlan::Join { keys, .. }
        | LogicalPlan::SemiJoin { keys, .. }
        | LogicalPlan::AntiJoin { keys, .. } => {
            for (l, r) in keys {
                referenced.insert(l.clone());
                referenced.insert(r.clone());
            }
        }
        LogicalPlan::Aggregate { keys, aggs, .. } => {
            for k in keys {
                k.referenced_cols(&mut referenced);
            }
            for a in aggs {
                a.expr.referenced_cols(&mut referenced);
            }
        }
        _ => {}
    });
    let mut plan = plan;
    for_each_scan_mut(&mut plan, &mut |scan| {
        if let LogicalPlan::Scan { accesses, .. } = scan {
            if accesses.iter().any(|a| referenced.contains(&a.name))
                && accesses.iter().any(|a| !referenced.contains(&a.name))
            {
                accesses.retain(|a| referenced.contains(&a.name));
            }
        }
    });
    plan
}

/// Visit every node in the tree (pre-order).
fn walk<'p, 'a>(node: &'p LogicalPlan<'a>, f: &mut dyn FnMut(&'p LogicalPlan<'a>)) {
    f(node);
    match node {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Join { left, right, .. } => {
            walk(left, f);
            walk(right, f);
        }
        LogicalPlan::SemiJoin { input, right, .. } | LogicalPlan::AntiJoin { input, right, .. } => {
            walk(input, f);
            walk(right, f);
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Offset { input, .. }
        | LogicalPlan::Limit { input, .. } => walk(input, f),
    }
}

// -- join reordering --------------------------------------------------------

/// Greedy cost-based reordering of the inner-join region, mirroring the
/// runtime optimizer's simulation (same estimates, same strict-`<` argmin)
/// but materialized into the tree: the lowered query then executes the
/// chosen order even with runtime reordering off.
fn join_reorder<'a>(plan: LogicalPlan<'a>, cost: &CostModel) -> LogicalPlan<'a> {
    match plan {
        LogicalPlan::Join { .. } => reorder_region(plan, cost),
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(join_reorder(*input, cost)),
            predicate,
        },
        LogicalPlan::SemiJoin { input, right, keys } => LogicalPlan::SemiJoin {
            input: Box::new(join_reorder(*input, cost)),
            right,
            keys,
        },
        LogicalPlan::AntiJoin { input, right, keys } => LogicalPlan::AntiJoin {
            input: Box::new(join_reorder(*input, cost)),
            right,
            keys,
        },
        LogicalPlan::Project {
            input,
            exprs,
            visible,
        } => LogicalPlan::Project {
            input: Box::new(join_reorder(*input, cost)),
            exprs,
            visible,
        },
        LogicalPlan::Aggregate { input, keys, aggs } => LogicalPlan::Aggregate {
            input: Box::new(join_reorder(*input, cost)),
            keys,
            aggs,
        },
        LogicalPlan::Sort { input, keys, bound } => LogicalPlan::Sort {
            input: Box::new(join_reorder(*input, cost)),
            keys,
            bound,
        },
        LogicalPlan::Offset { input, n } => LogicalPlan::Offset {
            input: Box::new(join_reorder(*input, cost)),
            n,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(join_reorder(*input, cost)),
            n,
        },
        other => other,
    }
}

fn reorder_region<'a>(node: LogicalPlan<'a>, cost: &CostModel) -> LogicalPlan<'a> {
    let root_bound = match &node {
        LogicalPlan::Join { probe_bound, .. } => *probe_bound,
        _ => None,
    };
    let mut scans: Vec<LogicalPlan<'a>> = Vec::new();
    let mut clauses: Vec<(String, String)> = Vec::new();
    flatten_owned(node, &mut scans, &mut clauses);

    struct Info<'r> {
        est: f64,
        rel: &'r Relation,
        paths: std::collections::HashMap<String, String>,
    }
    let infos: Vec<Info<'a>> = scans
        .iter()
        .map(|s| {
            let LogicalPlan::Scan {
                rel,
                accesses,
                filter,
                ..
            } = s
            else {
                unreachable!("flatten_owned only yields scans")
            };
            Info {
                est: cost.scan_rows(rel, accesses, filter.as_ref()),
                rel,
                paths: accesses
                    .iter()
                    .map(|a| (a.name.clone(), a.path.to_string()))
                    .collect(),
            }
        })
        .collect();
    let owner = |name: &str| -> usize {
        infos
            .iter()
            .position(|i| i.paths.contains_key(name))
            .unwrap_or_else(|| panic!("join key references unknown access {name:?}"))
    };
    let nd_of = |l: &str, r: &str| -> f64 {
        let (lo, ro) = (owner(l), owner(r));
        cost.join_key_distinct(
            infos[lo].rel,
            &infos[lo].paths[l],
            infos[ro].rel,
            &infos[ro].paths[r],
        )
    };

    // Greedy simulation, mirroring the runtime pick loop.
    let mut comp_of: Vec<usize> = (0..scans.len()).collect();
    let mut comp_est: Vec<f64> = infos.iter().map(|i| i.est).collect();
    let mut pending = clauses;
    let mut trees: Vec<Option<LogicalPlan<'a>>> = scans.into_iter().map(Some).collect();
    let mut leftovers: Vec<(String, String)> = Vec::new();
    while !pending.is_empty() {
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (pos, (l, r)) in pending.iter().enumerate() {
            let (lc, rc) = (comp_of[owner(l)], comp_of[owner(r)]);
            let estimate = if lc == rc {
                0.0 // already-joined filter: free, do it first
            } else {
                cost.join_output(comp_est[lc], comp_est[rc], nd_of(l, r))
            };
            if estimate < best_cost {
                best_cost = estimate;
                best = pos;
            }
        }
        let (l, r) = pending.remove(best);
        let (lc, rc) = (comp_of[owner(&l)], comp_of[owner(&r)]);
        if lc == rc {
            // Both sides already in one component: attach to its root join
            // as an extra key (a filter at runtime).
            match trees[lc].as_mut().expect("component root") {
                LogicalPlan::Join { keys, .. } => keys.push((l, r)),
                LogicalPlan::Scan { .. } => leftovers.push((l, r)),
                other => unreachable!("region root is {}", other.label()),
            }
            continue;
        }
        let nd = nd_of(&l, &r);
        let left = trees[lc].take().expect("left component");
        let right = trees[rc].take().expect("right component");
        trees[lc] = Some(LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            keys: vec![(l, r)],
            probe_bound: None,
        });
        comp_est[lc] = cost.join_output(comp_est[lc], comp_est[rc], nd);
        for c in comp_of.iter_mut() {
            if *c == rc {
                *c = lc;
            }
        }
    }
    // Stitch any disconnected components with cross joins, in index order.
    let mut root: Option<LogicalPlan<'a>> = None;
    for t in trees.into_iter().flatten() {
        root = Some(match root {
            None => t,
            Some(acc) => LogicalPlan::Join {
                left: Box::new(acc),
                right: Box::new(t),
                keys: Vec::new(),
                probe_bound: None,
            },
        });
    }
    let mut root = root.expect("join region has at least one scan");
    if !leftovers.is_empty() {
        match &mut root {
            LogicalPlan::Join { keys, .. } => keys.extend(leftovers),
            other => panic!(
                "self-join filter clause with single-scan region root {}",
                other.label()
            ),
        }
    }
    if root_bound.is_some() {
        if let LogicalPlan::Join { probe_bound, .. } = &mut root {
            *probe_bound = root_bound;
        }
    }
    root
}

// -- bound propagation ------------------------------------------------------

/// Push the `LIMIT` (+`OFFSET`) row bound down: into the sort (top-K), and
/// — when no reordering/filtering stage intervenes — into scans and the
/// probe side of a pure inner-join region. Early exits only ever cut rows
/// past the bound, and every operator on the way concatenates worker
/// outputs in deterministic order, so the surviving prefix is identical.
fn bound_propagation(plan: LogicalPlan<'_>) -> LogicalPlan<'_> {
    match plan {
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(apply_bound(*input, n)),
            n,
        },
        other => other,
    }
}

fn apply_bound(plan: LogicalPlan<'_>, b: usize) -> LogicalPlan<'_> {
    match plan {
        LogicalPlan::Offset { input, n } => LogicalPlan::Offset {
            // Skipped rows must also survive, so they widen the bound.
            input: Box::new(apply_bound(*input, b.saturating_add(n))),
            n,
        },
        LogicalPlan::Sort { input, keys, .. } => LogicalPlan::Sort {
            input,
            keys,
            bound: Some(b), // the sort re-orders rows: nothing below may cut
        },
        LogicalPlan::Project {
            input,
            exprs,
            visible,
        } => LogicalPlan::Project {
            // Row-preserving: the bound passes straight through.
            input: Box::new(apply_bound(*input, b)),
            exprs,
            visible,
        },
        LogicalPlan::Scan {
            name,
            rel,
            accesses,
            filter,
            ..
        } => LogicalPlan::Scan {
            name,
            rel,
            accesses,
            filter,
            limit_hint: Some(b),
        },
        node @ LogicalPlan::Join { .. } => {
            if pure_inner_connected(&node) {
                if let LogicalPlan::Join {
                    left, right, keys, ..
                } = node
                {
                    LogicalPlan::Join {
                        left,
                        right,
                        keys,
                        probe_bound: Some(b),
                    }
                } else {
                    unreachable!()
                }
            } else {
                node
            }
        }
        // Filters, aggregates, and reductions change row counts in ways a
        // prefix bound cannot see through: stop here.
        other => other,
    }
}

/// A join region where every node is an equi-join over scans (no crosses,
/// no reductions) — the shape the bounded probe path supports.
fn pure_inner_connected(node: &LogicalPlan<'_>) -> bool {
    match node {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Join {
            left, right, keys, ..
        } => !keys.is_empty() && pure_inner_connected(left) && pure_inner_connected(right),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// End-to-end planning
// ---------------------------------------------------------------------------

/// A fully planned query: the physical plan plus the `EXPLAIN` artifacts
/// gathered on the way.
pub struct Planned<'a> {
    /// The lowered physical plan, ready to run.
    pub query: Query<'a>,
    /// The canonical logical tree (before any pass), rendered.
    pub canonical: String,
    /// Per-pass before/after records.
    pub reports: Vec<PassReport>,
}

/// Optimize and lower, capturing per-pass reports for `EXPLAIN`. Hot paths
/// that don't need the reports should call `optimize(plan, opts).lower()`
/// instead — rendering samples cardinalities.
pub fn plan_and_lower<'a>(plan: LogicalPlan<'a>, opts: &PlannerOptions) -> Planned<'a> {
    let canonical = plan.render_with(&opts.cost);
    let (optimized, reports) = optimize_with_reports(plan, opts);
    Planned {
        query: optimized.lower(),
        canonical,
        reports,
    }
}

/// The `EXPLAIN` text: logical tree, per-pass deltas, physical plan.
pub fn explain_text(planned: &Planned<'_>) -> String {
    let mut out = String::new();
    out.push_str("=== logical plan ===\n");
    out.push_str(&planned.canonical);
    for r in &planned.reports {
        let _ = writeln!(out, "=== pass {} ===", r.name);
        if r.changed {
            out.push_str(&r.after);
        } else {
            out.push_str("(no change)\n");
        }
    }
    out.push_str("=== physical plan ===\n");
    let _ = write!(out, "{}", planned.query.explain());
    out
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Agg;
    use crate::expr::{col, lit};
    use crate::plan::ExecOptions;
    use jt_core::TilesConfig;

    fn rel(n: usize, modk: usize) -> Relation {
        let docs: Vec<_> = (0..n)
            .map(|i| jt_json::parse(&format!(r#"{{"v":{i},"k":{}}}"#, i % modk)).unwrap())
            .collect();
        Relation::load(&docs, TilesConfig::default())
    }

    fn opts1(optimize_joins: bool) -> ExecOptions {
        ExecOptions {
            threads: 1,
            optimize_joins,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn canonical_build_lower_matches_direct_query() {
        let a = rel(120, 6);
        let b = rel(40, 6);
        let plan = LogicalPlan::scan("a", &a)
            .access_as("a.v", "v", AccessType::Int)
            .access_as("a.k", "k", AccessType::Int)
            .filter(col("a.v").lt(lit(60)))
            .join("b", &b)
            .access_as("b.k", "k", AccessType::Int)
            .on("a.k", "b.k")
            .build();
        let got = plan.lower().run_with(opts1(false));
        let want = Query::scan("a", &a)
            .access_as("a.v", "v", AccessType::Int)
            .access_as("a.k", "k", AccessType::Int)
            .join("b", &b)
            .access_as("b.k", "k", AccessType::Int)
            .on("a.k", "b.k")
            .filter_joined(col("a.v").lt(lit(60)))
            .run_with(opts1(false));
        assert_eq!(got.to_lines(), want.to_lines());
        assert!(got.rows() > 0);
    }

    #[test]
    fn predicate_pushdown_moves_single_table_conjuncts_into_scans() {
        let a = rel(100, 5);
        let b = rel(50, 5);
        let plan = LogicalPlan::scan("a", &a)
            .access_as("a.v", "v", AccessType::Int)
            .access_as("a.k", "k", AccessType::Int)
            .filter(col("a.v").lt(lit(10)))
            .join("b", &b)
            .access_as("b.v", "v", AccessType::Int)
            .access_as("b.k", "k", AccessType::Int)
            .on("a.k", "b.k")
            .filter_joined(col("b.v").ge(lit(5)).and(col("a.v").lt(col("b.v"))))
            .build();
        let pushed = predicate_pushdown(plan);
        // Cross-table conjunct stays in a Filter node on top...
        let LogicalPlan::Filter { input, predicate } = &pushed else {
            panic!("cross-table conjunct must remain: {}", pushed.render());
        };
        assert_eq!(predicate.to_string(), "(a.v < b.v)");
        // ...while both single-table conjuncts reached their scans.
        let mut scan_filters = Vec::new();
        for_each_scan(input, &mut |s| {
            if let LogicalPlan::Scan { name, filter, .. } = s {
                scan_filters.push((name.clone(), filter.as_ref().map(|f| f.to_string())));
            }
        });
        assert_eq!(
            scan_filters,
            vec![
                ("a".to_owned(), Some("(a.v < 10)".to_owned())),
                ("b".to_owned(), Some("(b.v >= 5)".to_owned())),
            ]
        );
        // Results identical to the unpushed declaration-order run.
        let base = LogicalPlan::scan("a", &a)
            .access_as("a.v", "v", AccessType::Int)
            .access_as("a.k", "k", AccessType::Int)
            .filter(col("a.v").lt(lit(10)))
            .join("b", &b)
            .access_as("b.v", "v", AccessType::Int)
            .access_as("b.k", "k", AccessType::Int)
            .on("a.k", "b.k")
            .filter_joined(col("b.v").ge(lit(5)).and(col("a.v").lt(col("b.v"))))
            .build();
        // Pushdown changes scan output sizes, so the executor may flip the
        // hash-join build side (different column/row order): compare with a
        // fixed projection, order-insensitively.
        let run = |p: &LogicalPlan| {
            let mut lines = LogicalPlan::Project {
                input: Box::new(p.clone()),
                exprs: vec![col("a.v"), col("a.k"), col("b.v"), col("b.k")],
                visible: 4,
            }
            .lower()
            .run_with(opts1(false))
            .to_lines();
            lines.sort();
            lines
        };
        assert_eq!(run(&pushed), run(&base));
    }

    #[test]
    fn projection_pushdown_prunes_only_under_projection() {
        let a = rel(80, 4);
        let make = || {
            LogicalPlan::scan("a", &a)
                .access_as("a.v", "v", AccessType::Int)
                .access_as("a.k", "k", AccessType::Int)
                .build()
        };
        // No Project/Aggregate: accesses are the output — untouched.
        let plain = projection_pushdown(make());
        let mut n = 0;
        for_each_scan(&plain, &mut |s| {
            if let LogicalPlan::Scan { accesses, .. } = s {
                n = accesses.len();
            }
        });
        assert_eq!(n, 2);
        // With an aggregate referencing only one access, the other goes.
        let agg = LogicalPlan::scan("a", &a)
            .access_as("a.v", "v", AccessType::Int)
            .access_as("a.k", "k", AccessType::Int)
            .aggregate(vec![], vec![Agg::sum(col("a.v"))])
            .build();
        let pruned = projection_pushdown(agg);
        let mut names = Vec::new();
        for_each_scan(&pruned, &mut |s| {
            if let LogicalPlan::Scan { accesses, .. } = s {
                names = accesses.iter().map(|a| a.name.clone()).collect();
            }
        });
        assert_eq!(names, vec!["a.v".to_owned()]);
    }

    #[test]
    fn join_reorder_joins_small_filtered_side_first() {
        let big = rel(400, 8);
        let mid = rel(100, 8);
        let small = rel(100, 8);
        // Declaration order: big ⋈ mid first (est 400·100/nd), then small.
        // A selective filter on `small` should pull its join forward.
        let plan = LogicalPlan::scan("big", &big)
            .access_as("big.k", "k", AccessType::Int)
            .join("mid", &mid)
            .access_as("mid.k", "k", AccessType::Int)
            .join("small", &small)
            .access_as("small.k", "k", AccessType::Int)
            .access_as("small.v", "v", AccessType::Int)
            .filter(col("small.v").lt(lit(3)))
            .on("big.k", "mid.k")
            .on("big.k", "small.k")
            .build();
        let optimized = optimize(plan.clone(), &PlannerOptions::default());
        let mut order = Vec::new();
        for_each_scan(&optimized, &mut |s| {
            if let LogicalPlan::Scan { name, .. } = s {
                order.push(name.clone());
            }
        });
        assert_eq!(
            order,
            vec!["big".to_owned(), "small".to_owned(), "mid".to_owned()],
            "filtered small table should join first:\n{}",
            optimized.render()
        );
        // Same rows either way (declaration-order runtime for both).
        let a = optimized.lower().run_with(opts1(false));
        let b = optimize(plan, &PlannerOptions::default().without(Pass::JoinReorder))
            .lower()
            .run_with(opts1(false));
        let mut al = a.to_lines();
        let mut bl = b.to_lines();
        al.sort();
        bl.sort();
        assert_eq!(al, bl);
    }

    #[test]
    fn bound_propagation_reaches_sort_scan_and_probe() {
        let a = rel(100, 5);
        let b = rel(50, 5);
        // LIMIT over a sort: bound lands on the sort, not the scan.
        let sorted = bound_propagation(
            LogicalPlan::scan("a", &a)
                .access_as("a.v", "v", AccessType::Int)
                .order_by(0, false)
                .offset(5)
                .limit(10)
                .build(),
        );
        let mut sort_bound = None;
        let mut hint = None;
        walk(&sorted, &mut |n| match n {
            LogicalPlan::Sort { bound, .. } => sort_bound = *bound,
            LogicalPlan::Scan { limit_hint, .. } => hint = *limit_hint,
            _ => {}
        });
        assert_eq!(sort_bound, Some(15), "limit + offset must survive the sort");
        assert_eq!(hint, None, "nothing below a sort may cut rows");
        // LIMIT over a bare join: scan hints stop at the join (which gets
        // the probe bound instead).
        let joined = bound_propagation(
            LogicalPlan::scan("a", &a)
                .access_as("a.k", "k", AccessType::Int)
                .join("b", &b)
                .access_as("b.k", "k", AccessType::Int)
                .on("a.k", "b.k")
                .limit(7)
                .build(),
        );
        let mut probe = None;
        walk(&joined, &mut |n| {
            if let LogicalPlan::Join { probe_bound, .. } = n {
                probe = *probe_bound;
            }
        });
        assert_eq!(probe, Some(7));
        // LIMIT directly over a scan: the scan takes the hint.
        let scanned = bound_propagation(
            LogicalPlan::scan("a", &a)
                .access_as("a.v", "v", AccessType::Int)
                .limit(12)
                .build(),
        );
        let mut hint = None;
        walk(&scanned, &mut |n| {
            if let LogicalPlan::Scan { limit_hint, .. } = n {
                hint = *limit_hint;
            }
        });
        assert_eq!(hint, Some(12));
    }

    #[test]
    fn compat_shim_maps_optimize_joins_to_pass_set() {
        let on = PlannerOptions::compat(true);
        assert_eq!(on.passes, Pass::ALL.to_vec());
        let off = PlannerOptions::compat(false);
        assert!(!off.passes.contains(&Pass::JoinReorder));
        assert!(off.passes.contains(&Pass::PredicatePushdown));
        assert!(off.passes.contains(&Pass::ProjectionPushdown));
        assert!(off.passes.contains(&Pass::BoundPropagation));
    }

    #[test]
    fn explain_text_has_all_sections() {
        let a = rel(60, 3);
        let plan = LogicalPlan::scan("t", &a)
            .access_as("t.v", "v", AccessType::Int)
            .filter(col("t.v").lt(lit(30)))
            .aggregate(vec![], vec![Agg::count_star()])
            .build();
        let planned = plan_and_lower(plan, &PlannerOptions::default());
        let text = explain_text(&planned);
        assert!(text.contains("=== logical plan ==="), "{text}");
        assert!(text.contains("=== pass predicate-pushdown ==="), "{text}");
        assert!(text.contains("=== pass bound-propagation ==="), "{text}");
        assert!(text.contains("=== physical plan ==="), "{text}");
        assert!(text.contains("scan t"), "{text}");
        let rs = planned.query.run_with(opts1(true));
        assert_eq!(rs.rows(), 1);
    }

    #[test]
    fn semi_join_region_roundtrip_with_reduction_filter() {
        let a = rel(100, 5);
        let e = rel(40, 5);
        let plan = LogicalPlan::scan("a", &a)
            .access_as("a.k", "k", AccessType::Int)
            .access_as("a.v", "v", AccessType::Int)
            .filter(col("a.v").lt(lit(50)))
            .join("e", &e)
            .access_as("e.k", "k", AccessType::Int)
            .access_as("e.v", "v", AccessType::Int)
            .filter(col("e.v").lt(lit(10)))
            .semi_on("a.k", "e.k")
            .build();
        // Canonical shape: reduction scan keeps its filter, main filter
        // floats above the semi-join.
        let mut efilter = None;
        for_each_scan(&plan, &mut |s| {
            if let LogicalPlan::Scan { name, filter, .. } = s {
                if name == "e" {
                    efilter = filter.as_ref().map(|f| f.to_string());
                }
            }
        });
        assert_eq!(efilter, Some("(e.v < 10)".to_owned()));
        // Every pass toggle yields the same rows.
        let baseline = optimize(plan.clone(), &PlannerOptions::none())
            .lower()
            .run_with(opts1(false))
            .to_lines();
        for pass in Pass::ALL {
            let toggled = optimize(plan.clone(), &PlannerOptions::default().without(pass))
                .lower()
                .run_with(opts1(false))
                .to_lines();
            assert_eq!(
                toggled,
                baseline,
                "pass {} off changed results",
                pass.name()
            );
        }
        let all_on = optimize(plan, &PlannerOptions::default())
            .lower()
            .run_with(opts1(false))
            .to_lines();
        assert_eq!(all_on, baseline);
    }
}
