//! Morsel-parallel ORDER BY with normalized sort keys and top-K early exit.
//!
//! The old ORDER BY sorted row indices with the polymorphic
//! [`Scalar::compare`] comparator — one virtual dispatch per comparison —
//! and had no defined order for NaN or cross-type pairs (both mapped to
//! `Equal`, breaking strict weak ordering). This module replaces it with
//! the same canonical-key-bytes idiom the join/aggregation operators use:
//!
//! 1. **Normalized sort keys** ([`write_sort_key`]): each ORDER BY column
//!    is encoded once into an order-preserving byte string, so every
//!    comparison afterwards is a plain `memcmp`. Encodings per type:
//!
//!    | class   | tag    | payload                                        |
//!    |---------|--------|------------------------------------------------|
//!    | bool    | `0x01` | `0x00` / `0x01`                                |
//!    | numeric | `0x02` | f64 bits, sign-flipped to big-endian order     |
//!    | string  | `0x03` | bytes, `0x00`→`0x00 0xFF`, ends `0x00 0x00`    |
//!    | null    | `0xFF` | — (sorts last, matching SQL `NULLS LAST`)      |
//!
//!    Int/Float/Timestamp share the numeric class and coerce through f64,
//!    exactly like [`Scalar::write_key`] does for join/group keys (ints
//!    beyond 2^53 tie at f64 resolution and fall back to the stable
//!    original-index order). `-0.0` canonicalizes to `0.0`. NaN gets a
//!    defined total-order slot: every NaN bit pattern canonicalizes to the
//!    positive quiet NaN, which sorts **above +∞ and below null**. Classes
//!    order bool < numeric < string < null, giving cross-type pairs (which
//!    [`Scalar::compare`] cannot order) a total order too. `DESC` inverts
//!    every byte of the column's segment, which flips the order of the
//!    whole class hierarchy — nulls first on descending keys, the
//!    PostgreSQL default. Segments are prefix-free, so multi-column keys
//!    concatenate and still compare with one `memcmp`.
//!
//! 2. **Morsel-parallel stable merge sort** ([`sort_chunk`]): workers own
//!    contiguous row ranges ([`worker_ranges`]), encode their rows into a
//!    private key arena, and sort their run by `(key bytes, row index)`;
//!    a loser-heap k-way merge combines the runs. The original-index
//!    tie-break makes the order strict and total, so the merge result is
//!    bit-identical to the sequential oracle [`sort_chunk_seq`] at every
//!    thread count — the same guarantee the join/agg paths have.
//!
//! 3. **Top-K early exit**: with `LIMIT n` alongside ORDER BY, each worker
//!    keeps a bounded max-heap of its n best `(key, index)` pairs and the
//!    candidates merge at the end — O(rows · log n) instead of a full
//!    O(rows · log rows) sort. Because the order is strict, the top n is
//!    uniquely defined and identical to full-sort-then-truncate.
//!
//! 4. **Gather materialization**: the sorted index vector materializes the
//!    output with the per-column gather the join path uses, replacing the
//!    old per-cell `col[i].clone()` push loop on both the sequential and
//!    parallel paths.

use crate::cancel::CancelToken;
use crate::par::{gather_rows_par, run_workers_guarded, worker_ranges, PAR_MIN_ROWS};
use crate::scalar::Scalar;
use crate::Chunk;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Class tags of the normalized key encoding (module docs table).
const TAG_BOOL: u8 = 0x01;
const TAG_NUM: u8 = 0x02;
const TAG_STR: u8 = 0x03;
const TAG_NULL: u8 = 0xFF;

/// Use the bounded-heap top-K path instead of a full sort when
/// `limit * TOP_K_FACTOR <= rows` — near the full row count a heap does
/// the same comparisons as a sort plus per-row heap maintenance, so the
/// full sort (whose merge still stops at `limit` outputs) wins.
const TOP_K_FACTOR: usize = 2;

/// Execution shape of one sort: how many workers/runs, which path ran,
/// and where the time went. Feeds the `order-by`/`top-k` stage profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortStats {
    /// Worker threads used (1 on the sequential fallback).
    pub threads: usize,
    /// Sorted runs (full sort) or candidate heaps (top-K) merged; 1 on the
    /// sequential fallback.
    pub runs: usize,
    /// Whether the bounded-heap top-K path ran instead of a full sort.
    pub top_k: bool,
    /// Wall time of the parallel encode + per-run sort (or heap) phase.
    pub sort_wall: Duration,
    /// Wall time of the k-way merge plus output gather.
    pub merge_wall: Duration,
}

/// Map f64 bits to an order-preserving u64: flip all bits for negatives,
/// just the sign bit for positives, so unsigned byte order equals numeric
/// order. NaNs canonicalize to the positive quiet NaN (one slot above +∞),
/// `-0.0` to `0.0`.
#[inline]
fn f64_key_bits(x: f64) -> u64 {
    let x = if x.is_nan() {
        f64::from_bits(0x7FF8_0000_0000_0000)
    } else if x == 0.0 {
        0.0
    } else {
        x
    };
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

/// Append the normalized sort-key segment of `v` to `out`. Segments are
/// memcmp-ordered, prefix-free, and injective up to the total order's
/// equivalence classes: two scalars encode identically iff they tie.
pub fn write_sort_key(v: &Scalar, desc: bool, out: &mut Vec<u8>) {
    let start = out.len();
    match v {
        Scalar::Null => out.push(TAG_NULL),
        Scalar::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Scalar::Int(_) | Scalar::Float(_) | Scalar::Timestamp(_) => {
            out.push(TAG_NUM);
            let x = v.as_f64().expect("numeric scalar");
            out.extend_from_slice(&f64_key_bits(x).to_be_bytes());
        }
        Scalar::Str(s) => {
            out.push(TAG_STR);
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
    if desc {
        for b in &mut out[start..] {
            *b = !*b;
        }
    }
}

/// The total order the normalized keys encode, as a comparator — the
/// sequential oracle's comparison and the reference the byte encoding must
/// agree with. Unlike [`Scalar::compare`] this is total: nulls sort last,
/// every NaN occupies one slot above +∞, and cross-class pairs order by
/// class (bool < numeric < string < null).
pub fn total_compare(a: &Scalar, b: &Scalar) -> Ordering {
    fn class(v: &Scalar) -> u8 {
        match v {
            Scalar::Bool(_) => TAG_BOOL,
            Scalar::Int(_) | Scalar::Float(_) | Scalar::Timestamp(_) => TAG_NUM,
            Scalar::Str(_) => TAG_STR,
            Scalar::Null => TAG_NULL,
        }
    }
    let (ca, cb) = (class(a), class(b));
    if ca != cb {
        return ca.cmp(&cb);
    }
    match (a, b) {
        (Scalar::Null, Scalar::Null) => Ordering::Equal,
        (Scalar::Bool(x), Scalar::Bool(y)) => x.cmp(y),
        (Scalar::Str(x), Scalar::Str(y)) => x.as_bytes().cmp(y.as_bytes()),
        _ => {
            let (x, y) = (
                a.as_f64().expect("numeric scalar"),
                b.as_f64().expect("numeric scalar"),
            );
            match (x.is_nan(), y.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => x.partial_cmp(&y).expect("non-NaN comparison"),
            }
        }
    }
}

/// Compare two rows over the ORDER BY columns with [`total_compare`],
/// honoring per-column descending flags.
fn compare_rows(chunk: &Chunk, order_by: &[(usize, bool)], a: usize, b: usize) -> Ordering {
    for &(c, desc) in order_by {
        let ord = total_compare(chunk.get(a, c), chunk.get(b, c));
        let ord = if desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Append the full composite key of `row` (all ORDER BY columns) to `out`.
#[inline]
fn encode_row_key(chunk: &Chunk, order_by: &[(usize, bool)], row: usize, out: &mut Vec<u8>) {
    for &(c, desc) in order_by {
        write_sort_key(chunk.get(row, c), desc, out);
    }
}

/// Sequential oracle: comparator-based stable sort over row indices,
/// truncated to `limit`, materialized by per-column gather. Every
/// [`sort_chunk`] result is bit-identical to this at every thread count.
pub fn sort_chunk_seq(chunk: &Chunk, order_by: &[(usize, bool)], limit: Option<usize>) -> Chunk {
    let mut idx: Vec<u32> = (0..chunk.rows() as u32).collect();
    idx.sort_by(|&a, &b| compare_rows(chunk, order_by, a as usize, b as usize));
    if let Some(n) = limit {
        idx.truncate(n);
    }
    gather_rows_par(chunk, &idx, 1)
}

/// One full-sort run: the worker's key arena plus its locally sorted
/// global row indices.
struct Run {
    bytes: Vec<u8>,
    /// `offs[local]..offs[local + 1]` bounds the key of local row `local`.
    offs: Vec<usize>,
    start: usize,
    order: Vec<u32>,
}

impl Run {
    /// Key bytes of the `pos`-th row in this run's sorted order.
    #[inline]
    fn key_at(&self, pos: usize) -> &[u8] {
        let local = self.order[pos] as usize - self.start;
        &self.bytes[self.offs[local]..self.offs[local + 1]]
    }
}

/// One top-K candidate: an owned key plus its row. Max-heap order, so the
/// heap root is the worst retained candidate.
#[derive(PartialEq, Eq)]
struct Candidate {
    key: Vec<u8>,
    idx: u32,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key).then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Sort `chunk` by the ORDER BY columns, keeping at most `limit` rows.
/// Bit-identical to [`sort_chunk_seq`] at every thread count; see the
/// module docs for the path selection (sequential fallback below
/// [`PAR_MIN_ROWS`], bounded-heap top-K when the limit is small, full
/// merge sort otherwise).
pub fn sort_chunk(
    chunk: &Chunk,
    order_by: &[(usize, bool)],
    limit: Option<usize>,
    threads: usize,
) -> (Chunk, SortStats) {
    sort_chunk_cancellable(chunk, order_by, limit, threads, &CancelToken::none())
}

/// [`sort_chunk`] polling `cancel` at every morsel boundary (run encode +
/// sort, top-K heaps). A cancelled sort returns a truncated result the
/// caller must discard by checking the token afterwards.
pub fn sort_chunk_cancellable(
    chunk: &Chunk,
    order_by: &[(usize, bool)],
    limit: Option<usize>,
    threads: usize,
    cancel: &CancelToken,
) -> (Chunk, SortStats) {
    let rows = chunk.rows();
    let threads = threads.max(1);
    if rows < PAR_MIN_ROWS || order_by.is_empty() {
        let t = Instant::now();
        let out = if order_by.is_empty() {
            // Degenerate: no sort keys, just honor the bound.
            let bound = limit.unwrap_or(rows).min(rows);
            let idx: Vec<u32> = (0..bound as u32).collect();
            gather_rows_par(chunk, &idx, 1)
        } else {
            sort_chunk_seq(chunk, order_by, limit)
        };
        let stats = SortStats {
            threads: 1,
            runs: 1,
            top_k: false,
            sort_wall: t.elapsed(),
            merge_wall: Duration::ZERO,
        };
        return (out, stats);
    }
    assert!(rows <= u32::MAX as usize, "sort input too large");
    let bound = limit.unwrap_or(rows).min(rows);
    if bound.saturating_mul(TOP_K_FACTOR) <= rows && limit.is_some() {
        return top_k(chunk, order_by, bound, threads, cancel);
    }

    // Phase 1: per-worker key encoding + run sort, morsel-parallel. A
    // worker that observes cancellation contributes an empty run, which the
    // merge below handles like any exhausted run.
    let t_sort = Instant::now();
    let runs: Vec<Run> = run_workers_guarded(
        cancel,
        worker_ranges(rows, threads),
        |range| {
            let mut run = Run {
                bytes: Vec::new(),
                offs: Vec::with_capacity(range.len() + 1),
                start: range.start,
                order: (range.start as u32..range.end as u32).collect(),
            };
            run.offs.push(0);
            for row in range {
                encode_row_key(chunk, order_by, row, &mut run.bytes);
                run.offs.push(run.bytes.len());
            }
            let (bytes, offs, start) = (&run.bytes, &run.offs, run.start);
            let key = |g: u32| {
                let local = g as usize - start;
                &bytes[offs[local]..offs[local + 1]]
            };
            // (key, original index): strict total order, so the sorted run is
            // exactly the stable order of the oracle restricted to the range.
            run.order
                .sort_unstable_by(|&a, &b| key(a).cmp(key(b)).then(a.cmp(&b)));
            run
        },
        |range| Run {
            bytes: Vec::new(),
            offs: vec![0],
            start: range.start,
            order: Vec::new(),
        },
    );
    let sort_wall = t_sort.elapsed();

    // Phase 2: k-way merge by (key, index), stopping at the bound.
    let t_merge = Instant::now();
    let mut out_idx: Vec<u32> = Vec::with_capacity(bound);
    if runs.len() == 1 {
        out_idx.extend(runs[0].order.iter().take(bound));
    } else if bound > 0 {
        let mut cursors = vec![0usize; runs.len()];
        let mut heap: BinaryHeap<std::cmp::Reverse<(&[u8], u32, usize)>> =
            BinaryHeap::with_capacity(runs.len());
        for (ri, run) in runs.iter().enumerate() {
            if !run.order.is_empty() {
                heap.push(std::cmp::Reverse((run.key_at(0), run.order[0], ri)));
            }
        }
        while let Some(std::cmp::Reverse((_, idx, ri))) = heap.pop() {
            out_idx.push(idx);
            if out_idx.len() == bound {
                break;
            }
            cursors[ri] += 1;
            let pos = cursors[ri];
            if pos < runs[ri].order.len() {
                heap.push(std::cmp::Reverse((
                    runs[ri].key_at(pos),
                    runs[ri].order[pos],
                    ri,
                )));
            }
        }
    }
    let out = gather_rows_par(chunk, &out_idx, threads);
    let stats = SortStats {
        threads,
        runs: runs.len(),
        top_k: false,
        sort_wall,
        merge_wall: t_merge.elapsed(),
    };
    (out, stats)
}

/// Bounded-heap top-K: each worker keeps its `n` best `(key, index)`
/// candidates; the union is sorted and truncated. The strict total order
/// makes the result identical to a full sort truncated to `n`.
fn top_k(
    chunk: &Chunk,
    order_by: &[(usize, bool)],
    n: usize,
    threads: usize,
    cancel: &CancelToken,
) -> (Chunk, SortStats) {
    let t_sort = Instant::now();
    let heaps: Vec<Vec<Candidate>> = run_workers_guarded(
        cancel,
        worker_ranges(chunk.rows(), threads),
        |range| {
            let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(n + 1);
            let mut scratch = Vec::new();
            for row in range {
                scratch.clear();
                encode_row_key(chunk, order_by, row, &mut scratch);
                if heap.len() < n {
                    heap.push(Candidate {
                        key: scratch.clone(),
                        idx: row as u32,
                    });
                } else if let Some(mut worst) = heap.peek_mut() {
                    // Key bytes are cloned only when a row actually displaces
                    // the current worst candidate; rejected rows cost one
                    // encode + one memcmp.
                    if (scratch.as_slice(), row as u32) < (worst.key.as_slice(), worst.idx) {
                        worst.key.clear();
                        worst.key.extend_from_slice(&scratch);
                        worst.idx = row as u32;
                    }
                }
            }
            heap.into_vec()
        },
        |_| Vec::new(),
    );
    let runs = heaps.len();
    let sort_wall = t_sort.elapsed();

    let t_merge = Instant::now();
    let mut candidates: Vec<Candidate> = heaps.into_iter().flatten().collect();
    candidates.sort_unstable();
    candidates.truncate(n);
    let idx: Vec<u32> = candidates.iter().map(|c| c.idx).collect();
    let out = gather_rows_par(chunk, &idx, threads);
    let stats = SortStats {
        threads,
        runs,
        top_k: true,
        sort_wall,
        merge_wall: t_merge.elapsed(),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(v: &Scalar, desc: bool) -> Vec<u8> {
        let mut out = Vec::new();
        write_sort_key(v, desc, &mut out);
        out
    }

    /// A ladder of scalars in strictly ascending total order.
    fn ladder() -> Vec<Scalar> {
        vec![
            Scalar::Bool(false),
            Scalar::Bool(true),
            Scalar::Float(f64::NEG_INFINITY),
            Scalar::Int(-9),
            Scalar::Float(-0.5),
            Scalar::Float(0.0),
            Scalar::Float(0.5),
            Scalar::Int(1),
            Scalar::Timestamp(7),
            Scalar::Float(f64::INFINITY),
            Scalar::Float(f64::NAN),
            Scalar::str(""),
            Scalar::str("a"),
            Scalar::str("a\0"),
            Scalar::str("ab"),
            Scalar::str("b"),
            Scalar::Null,
        ]
    }

    #[test]
    fn key_bytes_agree_with_total_compare() {
        let vals = ladder();
        for a in &vals {
            for b in &vals {
                let byte_ord = key_of(a, false).cmp(&key_of(b, false));
                assert_eq!(
                    byte_ord,
                    total_compare(a, b),
                    "asc key order vs comparator for {a:?} vs {b:?}"
                );
                let desc_ord = key_of(a, true).cmp(&key_of(b, true));
                assert_eq!(
                    desc_ord,
                    total_compare(a, b).reverse(),
                    "desc inversion for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn ladder_is_strictly_ascending() {
        let vals = ladder();
        for w in vals.windows(2) {
            assert_eq!(
                total_compare(&w[0], &w[1]),
                Ordering::Less,
                "{:?} < {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn ties_encode_identically() {
        for (a, b) in [
            (Scalar::Int(5), Scalar::Float(5.0)),
            (Scalar::Float(0.0), Scalar::Float(-0.0)),
            (Scalar::Timestamp(100), Scalar::Int(100)),
            (Scalar::Float(f64::NAN), Scalar::Float(-f64::NAN)),
            (
                Scalar::Float(f64::NAN),
                Scalar::Float(f64::from_bits(0x7FF8_dead_beef_0001)),
            ),
        ] {
            assert_eq!(total_compare(&a, &b), Ordering::Equal, "{a:?} vs {b:?}");
            assert_eq!(key_of(&a, false), key_of(&b, false), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn nan_has_a_defined_slot_and_stable_ties() {
        // Regression: Scalar::compare returns None for NaN pairs, which the
        // old ORDER BY mapped to Equal — breaking strict weak ordering and
        // leaving NaN placement up to sort internals. The normalized keys
        // put every NaN just above +inf and below null, ties broken by
        // original index.
        let col = vec![
            Scalar::Float(f64::NAN),
            Scalar::Float(1.0),
            Scalar::Null,
            Scalar::Float(-f64::NAN),
            Scalar::Float(f64::INFINITY),
            Scalar::Float(-1.0),
        ];
        let chunk = Chunk {
            columns: vec![col, (0..6).map(Scalar::Int).collect()],
        };
        let sorted = sort_chunk_seq(&chunk, &[(0, false)], None);
        let tags: Vec<i64> = sorted.columns[1]
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        // -1.0, 1.0, inf, NaN(row 0), NaN(row 3), null.
        assert_eq!(tags, vec![5, 1, 4, 0, 3, 2]);
        let desc = sort_chunk_seq(&chunk, &[(0, true)], None);
        let tags: Vec<i64> = desc.columns[1]
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        // Descending: null first, then NaNs (still index-stable), inf, 1, -1.
        assert_eq!(tags, vec![2, 0, 3, 4, 1, 5]);
    }

    /// Duplicate-heavy mixed-type chunk big enough for the parallel paths.
    fn mixed_chunk(rows: usize) -> Chunk {
        let key = |i: usize| match i % 9 {
            0 => Scalar::Null,
            1 | 2 => Scalar::Int((i as i64 * 7) % 13),
            3 => Scalar::Float((i as i64 % 13) as f64),
            4 => Scalar::Float(f64::NAN),
            5 => Scalar::str(format!("s{}", i % 11)),
            6 => Scalar::Bool(i % 2 == 0),
            _ => Scalar::Timestamp((i as i64 * 3) % 17),
        };
        Chunk {
            columns: vec![
                (0..rows).map(key).collect(),
                (0..rows).map(|i| Scalar::Int((i as i64 * 5) % 7)).collect(),
                (0..rows).map(|i| Scalar::Int(i as i64)).collect(),
            ],
        }
    }

    fn assert_bits(a: &Chunk, b: &Chunk, what: &str) {
        assert_eq!(a.rows(), b.rows(), "{what}: rows");
        assert_eq!(a.width(), b.width(), "{what}: width");
        for c in 0..a.width() {
            for r in 0..a.rows() {
                let same = match (a.get(r, c), b.get(r, c)) {
                    (Scalar::Float(x), Scalar::Float(y)) => x.to_bits() == y.to_bits(),
                    (x, y) => x == y,
                };
                assert!(same, "{what}: row {r} col {c}");
            }
        }
    }

    #[test]
    fn parallel_full_sort_matches_oracle() {
        for rows in [40usize, 900] {
            let chunk = mixed_chunk(rows);
            let order = [(0usize, false), (1usize, true)];
            let oracle = sort_chunk_seq(&chunk, &order, None);
            for threads in [1usize, 2, 8] {
                let (par, stats) = sort_chunk(&chunk, &order, None, threads);
                assert_bits(&par, &oracle, &format!("rows={rows} t={threads}"));
                assert!(stats.threads >= 1 && stats.runs >= 1);
                assert!(!stats.top_k);
            }
        }
    }

    #[test]
    fn top_k_matches_truncated_full_sort() {
        let chunk = mixed_chunk(1000);
        let order = [(0usize, false), (2usize, true)];
        for limit in [0usize, 1, 10, 499, 500, 1000, 5000] {
            let oracle = sort_chunk_seq(&chunk, &order, Some(limit));
            for threads in [1usize, 2, 8] {
                let (par, stats) = sort_chunk(&chunk, &order, Some(limit), threads);
                assert_bits(&par, &oracle, &format!("limit={limit} t={threads}"));
                assert_eq!(
                    stats.top_k,
                    limit * TOP_K_FACTOR <= 1000,
                    "cutover rule at limit={limit}"
                );
            }
        }
    }

    #[test]
    fn equal_keys_keep_original_order() {
        let rows = 600;
        let chunk = Chunk {
            columns: vec![
                (0..rows).map(|i| Scalar::Int((i % 3) as i64)).collect(),
                (0..rows).map(|i| Scalar::Int(i as i64)).collect(),
            ],
        };
        for threads in [1usize, 4] {
            let (sorted, _) = sort_chunk(&chunk, &[(0, false)], None, threads);
            let mut last = vec![-1i64; 3];
            for r in 0..rows {
                let k = sorted.get(r, 0).as_i64().unwrap() as usize;
                let tag = sorted.get(r, 1).as_i64().unwrap();
                assert!(
                    tag > last[k],
                    "stability violated within key {k} at t={threads}"
                );
                last[k] = tag;
            }
        }
    }

    #[test]
    fn parallel_path_reports_shape() {
        let chunk = mixed_chunk(900);
        let (_, s) = sort_chunk(&chunk, &[(0, false)], None, 4);
        assert_eq!(s.threads, 4);
        assert!(
            s.runs > 1,
            "900 rows at 4 threads must produce several runs"
        );
        let (_, s) = sort_chunk(&chunk, &[(0, false)], Some(5), 4);
        assert!(s.top_k);
        let (_, s) = sort_chunk(&chunk, &[(0, false)], None, 1);
        assert_eq!(s.runs, 1, "threads=1 sorts one run");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = Chunk::empty(2);
        let (out, _) = sort_chunk(&empty, &[(0, false)], None, 4);
        assert_eq!(out.rows(), 0);
        let one = Chunk {
            columns: vec![vec![Scalar::Int(1)], vec![Scalar::str("x")]],
        };
        let (out, _) = sort_chunk(&one, &[(0, true)], Some(3), 4);
        assert_eq!(out.rows(), 1);
    }
}
