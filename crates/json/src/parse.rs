//! Recursive-descent JSON parser over raw bytes.
//!
//! The parser is byte-oriented: ASCII structure characters are matched
//! directly and string contents are validated as UTF-8 only when a string is
//! materialized. This is the "raw parser" cost model of the paper's JSON
//! baseline — accessing one attribute forces a full parse of the document.

use crate::error::{Error, ErrorKind, Result};
use crate::value::{Number, Value};

/// Parse a complete JSON document from a string slice.
pub fn parse(input: &str) -> Result<Value> {
    parse_bytes(input.as_bytes())
}

/// Parse a complete JSON document from raw bytes.
pub fn parse_bytes(input: &[u8]) -> Result<Value> {
    let mut p = Parser::new(input);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err(ErrorKind::TrailingData));
    }
    Ok(v)
}

/// A resumable JSON parser.
///
/// Exposed so callers that parse many documents from one buffer (newline-
/// delimited JSON ingestion in `jt-core`) can reuse position tracking.
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    scratch: String,
}

impl<'a> Parser<'a> {
    /// Maximum accepted nesting depth. Deeper documents fail with
    /// [`ErrorKind::TooDeep`] instead of overflowing the stack.
    pub const MAX_DEPTH: usize = 256;

    /// Create a parser over `input` starting at offset 0.
    pub fn new(input: &'a [u8]) -> Self {
        Parser {
            input,
            pos: 0,
            scratch: String::new(),
        }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True once all input (ignoring trailing whitespace) is consumed.
    pub fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.input.len()
    }

    /// Parse the next value from the current position (whitespace skipped).
    /// Used for newline-delimited streams of documents.
    pub fn parse_next(&mut self) -> Result<Value> {
        self.parse_value(0)
    }

    fn err(&self, kind: ErrorKind) -> Error {
        Error::new(kind, self.pos)
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    #[inline]
    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(x) if x == b => Ok(()),
            Some(x) => {
                self.pos -= 1;
                Err(self.err(ErrorKind::UnexpectedByte(x)))
            }
            None => Err(self.err(ErrorKind::UnexpectedEof)),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > Self::MAX_DEPTH {
            return Err(self.err(ErrorKind::TooDeep));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal(b"true", Value::Bool(true)),
            Some(b'f') => self.parse_literal(b"false", Value::Bool(false)),
            Some(b'n') => self.parse_literal(b"null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(ErrorKind::UnexpectedByte(b))),
        }
    }

    fn parse_literal(&mut self, lit: &[u8], v: Value) -> Result<Value> {
        if self.input.len() - self.pos < lit.len()
            || &self.input[self.pos..self.pos + lit.len()] != lit
        {
            return Err(self.err(ErrorKind::BadLiteral));
        }
        self.pos += lit.len();
        Ok(v)
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(members)),
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::UnexpectedByte(b)));
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            let val = self.parse_value(depth + 1)?;
            elems.push(val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(elems)),
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::UnexpectedByte(b)));
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        // Fast path: scan for the closing quote; fall back to the escape
        // decoder only when a backslash or non-ASCII byte shows up.
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    let raw = &self.input[start..self.pos];
                    self.pos += 1;
                    return match std::str::from_utf8(raw) {
                        Ok(s) => Ok(s.to_owned()),
                        Err(_) => Err(Error::new(ErrorKind::BadUtf8, start)),
                    };
                }
                Some(b'\\') => break,
                Some(b) if b < 0x20 => return Err(self.err(ErrorKind::BadEscape)),
                Some(_) => self.pos += 1,
            }
        }
        // Slow path with escapes.
        self.scratch.clear();
        let prefix = &self.input[start..self.pos];
        match std::str::from_utf8(prefix) {
            Ok(s) => self.scratch.push_str(s),
            Err(_) => return Err(Error::new(ErrorKind::BadUtf8, start)),
        }
        loop {
            match self.bump() {
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
                Some(b'"') => return Ok(std::mem::take(&mut self.scratch)),
                Some(b'\\') => self.parse_escape()?,
                Some(b) if b < 0x20 => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::BadEscape));
                }
                Some(b) if b < 0x80 => self.scratch.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8 sequence: validate and copy it whole.
                    let seq_start = self.pos - 1;
                    let len = utf8_len(self.input[seq_start]);
                    if len == 0 || seq_start + len > self.input.len() {
                        return Err(Error::new(ErrorKind::BadUtf8, seq_start));
                    }
                    let seq = &self.input[seq_start..seq_start + len];
                    match std::str::from_utf8(seq) {
                        Ok(s) => self.scratch.push_str(s),
                        Err(_) => return Err(Error::new(ErrorKind::BadUtf8, seq_start)),
                    }
                    self.pos = seq_start + len;
                }
            }
        }
    }

    fn parse_escape(&mut self) -> Result<()> {
        match self.bump() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'"') => {
                self.scratch.push('"');
                Ok(())
            }
            Some(b'\\') => {
                self.scratch.push('\\');
                Ok(())
            }
            Some(b'/') => {
                self.scratch.push('/');
                Ok(())
            }
            Some(b'b') => {
                self.scratch.push('\u{8}');
                Ok(())
            }
            Some(b'f') => {
                self.scratch.push('\u{c}');
                Ok(())
            }
            Some(b'n') => {
                self.scratch.push('\n');
                Ok(())
            }
            Some(b'r') => {
                self.scratch.push('\r');
                Ok(())
            }
            Some(b't') => {
                self.scratch.push('\t');
                Ok(())
            }
            Some(b'u') => {
                let hi = self.parse_hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low surrogate.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err(ErrorKind::BadUnicode));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err(ErrorKind::BadUnicode));
                    }
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(c).ok_or_else(|| self.err(ErrorKind::BadUnicode))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err(ErrorKind::BadUnicode));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err(ErrorKind::BadUnicode))?
                };
                self.scratch.push(ch);
                Ok(())
            }
            Some(_) => {
                self.pos -= 1;
                Err(self.err(ErrorKind::BadEscape))
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err(ErrorKind::UnexpectedEof))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::BadUnicode));
                }
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err(ErrorKind::BadNumber));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err(ErrorKind::BadNumber)),
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The slice is pure ASCII digits/signs by construction.
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::Int(i)));
            }
            // Integer literal out of i64 range: fall through to float,
            // matching RFC 8259's double-precision interoperability note.
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Num(Number::Float(f))),
            _ => Err(Error::new(ErrorKind::BadNumber, start)),
        }
    }
}

/// Length of the UTF-8 sequence starting with `lead`, or 0 if invalid.
/// Shared with the structural-index scanner (`crate::index`).
#[inline]
pub(crate) fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::int(42));
        assert_eq!(parse("-7").unwrap(), Value::int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::float(1000.0));
        assert_eq!(parse("-1.5E-2").unwrap(), Value::float(-0.015));
        assert_eq!(parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
        let v = parse(r#"[1, "two", null, [3]]"#).unwrap();
        assert_eq!(v.len(), 4);
        assert_eq!(
            v.get_index(3).unwrap().get_index(0).unwrap().as_i64(),
            Some(3)
        );
        let v = parse(r#"{"a": {"b": [1, 2]}}"#).unwrap();
        assert_eq!(v.pointer(&["a", "b"]).unwrap().len(), 2);
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" \t\n{ \"a\" :\r 1 , \"b\" : [ ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap(),
            Value::str("a\"b\\c/d\u{8}\u{c}\n\r\t")
        );
        assert_eq!(parse(r#""A""#).unwrap(), Value::str("A"));
        assert_eq!(parse(r#""é""#).unwrap(), Value::str("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::str("😀"));
    }

    #[test]
    fn raw_utf8_in_strings() {
        assert_eq!(parse("\"héllo wörld\"").unwrap(), Value::str("héllo wörld"));
        assert_eq!(parse("\"日本語\"").unwrap(), Value::str("日本語"));
        // Mixed escapes and multibyte.
        assert_eq!(parse("\"日\\n本\"").unwrap(), Value::str("日\n本"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("{1: 2}").is_err());
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("-").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("\"\\x\"").is_err());
        assert!(parse("\"\\u12g4\"").is_err());
        assert!(parse("\"\\ud800\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\udc00\"").is_err(), "lone low surrogate");
        assert!(parse("1 2").is_err(), "trailing data");
        assert!(parse("[1] []").is_err(), "trailing data");
    }

    #[test]
    fn error_positions() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        let e = parse("  {").unwrap_err();
        assert_eq!(e.offset, 3);
    }

    #[test]
    fn control_chars_rejected_raw_but_ok_escaped() {
        assert!(parse("\"a\nb\"").is_err());
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::str("a\nb"));
    }

    #[test]
    fn deep_nesting_bounded() {
        let deep = "[".repeat(Parser::MAX_DEPTH + 2) + &"]".repeat(Parser::MAX_DEPTH + 2);
        assert_eq!(parse(&deep).unwrap_err().kind, ErrorKind::TooDeep);
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn huge_int_degrades_to_float() {
        let v = parse("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Num(Number::Float(_))));
        assert_eq!(parse("9223372036854775807").unwrap(), Value::int(i64::MAX));
        assert_eq!(parse("-9223372036854775808").unwrap(), Value::int(i64::MIN));
    }

    #[test]
    fn duplicate_keys_preserved() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn streaming_parse_next() {
        let mut p = Parser::new(b" {\"a\":1}\n{\"a\":2}\n");
        let a = p.parse_next().unwrap();
        let b = p.parse_next().unwrap();
        assert_eq!(a.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(b.get("a").unwrap().as_i64(), Some(2));
        assert!(p.at_end());
    }

    #[test]
    fn infinity_rejected() {
        assert!(parse("1e999999").is_err());
    }
}
