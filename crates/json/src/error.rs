//! Parse errors with byte-precise positions.

use std::fmt;

/// Result alias for JSON parsing.
pub type Result<T> = std::result::Result<T, Error>;

/// What went wrong while parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended while a value was still open.
    UnexpectedEof,
    /// A byte that cannot start or continue the current production.
    UnexpectedByte(u8),
    /// Literal (`true`/`false`/`null`) spelled incorrectly.
    BadLiteral,
    /// Malformed number (e.g. `1.`, `-`, `01`).
    BadNumber,
    /// Malformed string escape or raw control character.
    BadEscape,
    /// `\uXXXX` escape that is not valid UTF-16 (lone surrogate).
    BadUnicode,
    /// Document nesting exceeded [`crate::Parser::MAX_DEPTH`].
    TooDeep,
    /// Input had trailing non-whitespace bytes after the top-level value.
    TrailingData,
    /// Input is not valid UTF-8 where UTF-8 is required (inside strings).
    BadUtf8,
}

/// A parse error and the byte offset where it was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error {
    /// The kind of syntax violation.
    pub kind: ErrorKind,
    /// Byte offset into the input at which the violation was detected.
    pub offset: usize,
}

impl Error {
    pub(crate) fn new(kind: ErrorKind, offset: usize) -> Self {
        Error { kind, offset }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ErrorKind::UnexpectedByte(b) => {
                write!(f, "unexpected byte {:#04x} ({:?})", b, b as char)
            }
            ErrorKind::BadLiteral => write!(f, "malformed literal"),
            ErrorKind::BadNumber => write!(f, "malformed number"),
            ErrorKind::BadEscape => write!(f, "malformed string escape"),
            ErrorKind::BadUnicode => write!(f, "invalid unicode escape"),
            ErrorKind::TooDeep => write!(f, "document nested too deeply"),
            ErrorKind::TrailingData => write!(f, "trailing data after value"),
            ErrorKind::BadUtf8 => write!(f, "invalid UTF-8 in string"),
        }?;
        write!(f, " at byte {}", self.offset)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = Error::new(ErrorKind::BadNumber, 17);
        let s = e.to_string();
        assert!(s.contains("number"));
        assert!(s.contains("17"));
    }

    #[test]
    fn display_unexpected_byte_shows_char() {
        let e = Error::new(ErrorKind::UnexpectedByte(b'}'), 0);
        assert!(e.to_string().contains('}'));
    }
}
