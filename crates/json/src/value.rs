//! The JSON document model.

use std::fmt;

/// A parsed JSON number.
///
/// RFC 8259 leaves number precision to the implementation. Matching §3.4 of
/// the paper, we distinguish integers (stored as SQL `BigInt`, i.e. `i64`)
/// from the remaining numerics (IEEE 754 double precision): itemset entries
/// pair a key path with its *primitive type*, so `1` and `1.5` under the same
/// key are different items during extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An integral number that fits in `i64`.
    Int(i64),
    /// Any other numeric value (fractions, exponents, out-of-range integers).
    Float(f64),
}

impl Number {
    /// Numeric value as `f64`, widening integers.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// Integer value, if this number is an integer.
    #[inline]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(_) => None,
        }
    }
}

/// An in-memory JSON document.
///
/// Objects are stored as ordered `(key, value)` pairs: JSON tiles' key-path
/// collection walks documents in input order, and the JSON baseline must
/// print documents back out unchanged (modulo whitespace).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The `null` literal.
    Null,
    /// The `true` / `false` literals.
    Bool(bool),
    /// A JSON number.
    Num(Number),
    /// A JSON string (already unescaped).
    Str(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object in input key order. Duplicate keys are preserved by the
    /// parser; last-one-wins semantics are applied by lookups.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an integer value.
    #[inline]
    pub fn int(i: i64) -> Value {
        Value::Num(Number::Int(i))
    }

    /// Convenience constructor for a float value.
    #[inline]
    pub fn float(f: f64) -> Value {
        Value::Num(Number::Float(f))
    }

    /// Convenience constructor for a string value.
    #[inline]
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True if this value is `null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string payload, if this is a string.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if this is a number.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[inline]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    #[inline]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (last duplicate wins, mirroring PostgreSQL).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(elems) => elems.get(idx),
            _ => None,
        }
    }

    /// Walk a path of object keys, returning `None` as soon as a segment is
    /// missing — the PostgreSQL `->` chain semantics the paper adopts (§4.1).
    pub fn pointer(&self, path: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for seg in path {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// Number of direct children (object members or array elements).
    pub fn len(&self) -> usize {
        match self {
            Value::Array(a) => a.len(),
            Value::Object(o) => o.len(),
            _ => 0,
        }
    }

    /// True if this is an empty container or a scalar.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A short name of the primitive JSON type, used in error messages and
    /// by the extraction type tags.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(Number::Int(_)) => "integer",
            Value::Num(Number::Float(_)) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::print::to_string(self))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn get_returns_last_duplicate() {
        let v = obj(&[("a", Value::int(1)), ("a", Value::int(2))]);
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn get_missing_key_is_none() {
        let v = obj(&[("a", Value::int(1))]);
        assert!(v.get("b").is_none());
        assert!(Value::int(3).get("a").is_none());
    }

    #[test]
    fn pointer_walks_nesting() {
        let v = obj(&[("geo", obj(&[("lat", Value::float(1.9))]))]);
        assert_eq!(v.pointer(&["geo", "lat"]).unwrap().as_f64(), Some(1.9));
        assert!(v.pointer(&["geo", "lon"]).is_none());
        assert!(v.pointer(&["missing", "lat"]).is_none());
    }

    #[test]
    fn array_indexing() {
        let v = Value::Array(vec![Value::int(7), Value::str("x")]);
        assert_eq!(v.get_index(0).unwrap().as_i64(), Some(7));
        assert_eq!(v.get_index(1).unwrap().as_str(), Some("x"));
        assert!(v.get_index(2).is_none());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::int(1).type_name(), "integer");
        assert_eq!(Value::float(1.5).type_name(), "float");
        assert_eq!(Value::Bool(true).type_name(), "boolean");
        assert_eq!(Value::str("s").type_name(), "string");
        assert_eq!(Value::Array(vec![]).type_name(), "array");
        assert_eq!(Value::Object(vec![]).type_name(), "object");
    }

    #[test]
    fn number_widening() {
        assert_eq!(Number::Int(3).as_f64(), 3.0);
        assert_eq!(Number::Int(3).as_i64(), Some(3));
        assert_eq!(Number::Float(2.5).as_i64(), None);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Value::Array(vec![Value::Null]).len(), 1);
        assert!(Value::Object(vec![]).is_empty());
        assert!(Value::int(1).is_empty());
    }
}
