//! On-demand (lazy) document access over a structural index.
//!
//! [`OnDemandDoc::parse`] runs the one-pass tape scanner (`crate::index`)
//! and exposes the document through copyable [`Cursor`]s. Navigation —
//! [`Cursor::fields`], [`Cursor::elements`], [`Cursor::get`],
//! [`Cursor::pointer`] — walks tape entries and skip pointers only; scalars
//! are parsed directly from their recorded byte spans the first time a
//! cursor is asked for them. Strings with no escapes are borrowed straight
//! from the input buffer.
//!
//! Invariants (relied on by `jt-jsonb`'s tape encoder and `jt-core`'s shape
//! analysis, and enforced by the differential suite):
//!
//! - `OnDemandDoc::parse(b)` succeeds iff `parse_bytes(b)` succeeds, with
//!   equal [`Error`](crate::Error)s on rejection.
//! - [`Cursor::to_value`] equals the eager parse result exactly: key order
//!   and duplicate keys preserved, identical `Int`/`Float` classification.
//! - [`Cursor::get`] / [`Cursor::pointer`] mirror [`Value::get`] /
//!   [`Value::pointer`] (last duplicate wins).

use std::borrow::Cow;

use crate::error::Result;
use crate::index::{build_tape, subtree_end, EntryKind, Tape, TapeEntry, FLAG_ESCAPED, FLAG_FLOAT};
use crate::parse::utf8_len;
use crate::value::{Number, Value};

/// A validated document: borrowed raw bytes plus their structural index.
pub struct OnDemandDoc<'a> {
    input: &'a [u8],
    tape: Tape,
}

impl<'a> OnDemandDoc<'a> {
    /// Build the structural index for `input`. Accepts and rejects exactly
    /// what [`crate::parse_bytes`] does, with identical error positions.
    pub fn parse(input: &'a [u8]) -> Result<Self> {
        let tape = build_tape(input)?;
        Ok(OnDemandDoc { input, tape })
    }

    /// Cursor at the document root.
    pub fn root(&self) -> Cursor<'_> {
        Cursor {
            input: self.input,
            entries: &self.tape.entries,
            idx: 0,
        }
    }

    /// The raw bytes this document was parsed from.
    pub fn input(&self) -> &'a [u8] {
        self.input
    }
}

/// A lightweight handle to one value inside an [`OnDemandDoc`].
#[derive(Clone, Copy)]
pub struct Cursor<'d> {
    input: &'d [u8],
    entries: &'d [TapeEntry],
    idx: usize,
}

/// What a cursor points at. Containers expose iterators over child cursors;
/// scalars are parsed from their byte spans when this is constructed.
pub enum Node<'d> {
    /// The `null` literal.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number, classified like the eager parser (`Int` iff the literal
    /// has no fraction/exponent and fits `i64`).
    Num(Number),
    /// A string, still in raw (possibly escaped) form.
    Str(RawStr<'d>),
    /// An array; iterate for element cursors.
    Array(ArrayIter<'d>),
    /// An object; iterate for `(key, value-cursor)` pairs in input order,
    /// duplicates preserved.
    Object(ObjectIter<'d>),
}

impl<'d> Cursor<'d> {
    #[inline]
    fn entry(&self) -> TapeEntry {
        self.entries[self.idx]
    }

    #[inline]
    fn at(&self, idx: usize) -> Cursor<'d> {
        Cursor { idx, ..*self }
    }

    /// Inspect the value under the cursor, parsing scalars on this first
    /// touch. Container variants cost nothing beyond the iterator handle.
    pub fn node(&self) -> Node<'d> {
        let e = self.entry();
        match e.kind {
            EntryKind::Null => Node::Null,
            EntryKind::True => Node::Bool(true),
            EntryKind::False => Node::Bool(false),
            EntryKind::Number => Node::Num(parse_number_span(self.input, e)),
            EntryKind::Str => Node::Str(RawStr {
                bytes: &self.input[e.start as usize..e.end as usize],
                escaped: e.flags & FLAG_ESCAPED != 0,
            }),
            EntryKind::Object => Node::Object(ObjectIter {
                cursor: *self,
                next: self.idx + 1,
                end: e.aux as usize,
            }),
            EntryKind::Array => Node::Array(ArrayIter {
                cursor: *self,
                next: self.idx + 1,
                end: e.aux as usize,
            }),
            EntryKind::Key => unreachable!("cursors never point at member keys"),
        }
    }

    /// True if this value is `null`.
    pub fn is_null(&self) -> bool {
        self.entry().kind == EntryKind::Null
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self.entry().kind {
            EntryKind::True => Some(true),
            EntryKind::False => Some(false),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self.node() {
            Node::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self.node() {
            Node::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The decoded string payload, if this is a string. Borrows from the
    /// input buffer when the raw span contains no escapes.
    pub fn as_str(&self) -> Option<Cow<'d, str>> {
        match self.node() {
            Node::Str(s) => Some(s.decode()),
            _ => None,
        }
    }

    /// Object member lookup (last duplicate wins, mirroring [`Value::get`]).
    pub fn get(&self, key: &str) -> Option<Cursor<'d>> {
        match self.node() {
            Node::Object(it) => {
                let mut found = None;
                for (k, v) in it {
                    if k.decode() == key {
                        found = Some(v);
                    }
                }
                found
            }
            _ => None,
        }
    }

    /// Array element lookup, mirroring [`Value::get_index`].
    pub fn get_index(&self, idx: usize) -> Option<Cursor<'d>> {
        match self.node() {
            Node::Array(mut it) => it.nth(idx),
            _ => None,
        }
    }

    /// Walk a path of object keys, mirroring [`Value::pointer`].
    pub fn pointer(&self, path: &[&str]) -> Option<Cursor<'d>> {
        let mut cur = *self;
        for seg in path {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// Object member cursors in input order, duplicates preserved. Empty
    /// iterator when the cursor is not at an object.
    pub fn fields(&self) -> ObjectIter<'d> {
        match self.node() {
            Node::Object(it) => it,
            _ => ObjectIter {
                cursor: *self,
                next: 0,
                end: 0,
            },
        }
    }

    /// Array element cursors in order. Empty iterator when the cursor is
    /// not at an array.
    pub fn elements(&self) -> ArrayIter<'d> {
        match self.node() {
            Node::Array(it) => it,
            _ => ArrayIter {
                cursor: *self,
                next: 0,
                end: 0,
            },
        }
    }

    /// Materialize the full subtree. Bit-identical to what
    /// [`crate::parse_bytes`] would have produced for the same span.
    pub fn to_value(&self) -> Value {
        match self.node() {
            Node::Null => Value::Null,
            Node::Bool(b) => Value::Bool(b),
            Node::Num(n) => Value::Num(n),
            Node::Str(s) => Value::Str(s.decode().into_owned()),
            Node::Array(it) => Value::Array(it.map(|c| c.to_value()).collect()),
            Node::Object(it) => Value::Object(
                it.map(|(k, v)| (k.decode().into_owned(), v.to_value()))
                    .collect(),
            ),
        }
    }
}

/// A string (or member key) still in its raw, possibly escaped wire form.
#[derive(Clone, Copy)]
pub struct RawStr<'d> {
    bytes: &'d [u8],
    escaped: bool,
}

impl<'d> RawStr<'d> {
    /// The raw content bytes between the quotes, escapes intact.
    pub fn raw(&self) -> &'d [u8] {
        self.bytes
    }

    /// True if the raw span contains backslash escapes (decoding allocates).
    pub fn is_escaped(&self) -> bool {
        self.escaped
    }

    /// Decode to UTF-8 text: a borrow of the input when escape-free,
    /// otherwise a freshly unescaped string.
    pub fn decode(&self) -> Cow<'d, str> {
        if self.escaped {
            Cow::Owned(decode_escaped(self.bytes))
        } else {
            // Validated during the tape scan.
            Cow::Borrowed(std::str::from_utf8(self.bytes).expect("scan-validated UTF-8"))
        }
    }
}

/// Iterator over array element cursors.
#[derive(Clone, Copy)]
pub struct ArrayIter<'d> {
    cursor: Cursor<'d>,
    next: usize,
    end: usize,
}

impl<'d> Iterator for ArrayIter<'d> {
    type Item = Cursor<'d>;

    fn next(&mut self) -> Option<Cursor<'d>> {
        if self.next >= self.end {
            return None;
        }
        let c = self.cursor.at(self.next);
        self.next = subtree_end(self.cursor.entries, self.next);
        Some(c)
    }
}

/// Iterator over object members as `(raw key, value cursor)` pairs.
#[derive(Clone, Copy)]
pub struct ObjectIter<'d> {
    cursor: Cursor<'d>,
    next: usize,
    end: usize,
}

impl<'d> Iterator for ObjectIter<'d> {
    type Item = (RawStr<'d>, Cursor<'d>);

    fn next(&mut self) -> Option<(RawStr<'d>, Cursor<'d>)> {
        if self.next >= self.end {
            return None;
        }
        let key = self.cursor.entries[self.next];
        debug_assert_eq!(key.kind, EntryKind::Key);
        let raw = RawStr {
            bytes: &self.cursor.input[key.start as usize..key.end as usize],
            escaped: key.flags & FLAG_ESCAPED != 0,
        };
        let val = self.cursor.at(self.next + 1);
        self.next = subtree_end(self.cursor.entries, self.next + 1);
        Some((raw, val))
    }
}

/// Parse a number span exactly like `Parser::parse_number` classifies it:
/// no fraction/exponent and fits `i64` → `Int`, otherwise `Float`. The scan
/// already rejected non-finite literals, so the float parse cannot fail.
fn parse_number_span(input: &[u8], e: TapeEntry) -> Number {
    let text = std::str::from_utf8(&input[e.start as usize..e.end as usize]).expect("ascii");
    if e.flags & FLAG_FLOAT == 0 {
        if let Ok(i) = text.parse::<i64>() {
            return Number::Int(i);
        }
    }
    Number::Float(text.parse::<f64>().expect("scan-validated finite number"))
}

/// Unescape a scan-validated string span. Invariants (escape shapes, hex
/// digits, surrogate pairing, UTF-8 sequences) were all checked by
/// `Scanner::scan_string`, so this decoder only transcribes.
fn decode_escaped(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\\' {
            i += 1;
            match bytes[i] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hi = hex4(&bytes[i + 1..i + 5]);
                    i += 4;
                    let ch = if (0xD800..0xDC00).contains(&hi) {
                        // bytes[i+1..i+3] is the validated `\u` introducer.
                        let lo = hex4(&bytes[i + 3..i + 7]);
                        i += 6;
                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(c).expect("scan-validated surrogate pair")
                    } else {
                        char::from_u32(hi).expect("scan-validated code point")
                    };
                    out.push(ch);
                }
                other => unreachable!("scan-validated escape {other:?}"),
            }
            i += 1;
        } else if b < 0x80 {
            out.push(b as char);
            i += 1;
        } else {
            let len = utf8_len(b);
            out.push_str(std::str::from_utf8(&bytes[i..i + len]).expect("scan-validated UTF-8"));
            i += len;
        }
    }
    out
}

fn hex4(bytes: &[u8]) -> u32 {
    let mut v = 0u32;
    for &b in bytes {
        let d = match b {
            b'0'..=b'9' => (b - b'0') as u32,
            b'a'..=b'f' => (b - b'a' + 10) as u32,
            b'A'..=b'F' => (b - b'A' + 10) as u32,
            _ => unreachable!("scan-validated hex digit"),
        };
        v = v * 16 + d;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(input: &str) {
        let doc = OnDemandDoc::parse(input.as_bytes()).unwrap();
        assert_eq!(doc.root().to_value(), parse(input).unwrap(), "{input:?}");
    }

    #[test]
    fn to_value_matches_parse() {
        for input in [
            "null",
            "true",
            "false",
            "42",
            "-7",
            "2.5",
            "1e3",
            "-1.5E-2",
            "\"hi\"",
            "[]",
            "{}",
            r#"[1, "two", null, [3]]"#,
            r#"{"a": {"b": [1, 2]}}"#,
            " \t\n{ \"a\" :\r 1 , \"b\" : [ ] } \n",
            r#""a\"b\\c\/d\b\f\n\r\t""#,
            r#""😀""#,
            "\"héllo wörld\"",
            "\"日\\n本\"",
            "99999999999999999999999",
            "9223372036854775807",
            "-9223372036854775808",
            r#"{"a":1,"a":2}"#,
        ] {
            roundtrip(input);
        }
    }

    #[test]
    fn lazy_navigation() {
        let input = br#"{"id": 7, "user": {"name": "ada", "tags": ["x", "y"]}, "id": 8}"#;
        let doc = OnDemandDoc::parse(input).unwrap();
        let root = doc.root();
        // Last duplicate wins, like Value::get.
        assert_eq!(root.get("id").unwrap().as_i64(), Some(8));
        assert_eq!(
            root.pointer(&["user", "name"]).unwrap().as_str().unwrap(),
            "ada"
        );
        assert_eq!(
            root.pointer(&["user", "tags"])
                .unwrap()
                .get_index(1)
                .unwrap()
                .as_str()
                .unwrap(),
            "y"
        );
        assert!(root.get("missing").is_none());
        assert!(root.get("id").unwrap().get("x").is_none());
    }

    #[test]
    fn strings_borrow_when_escape_free() {
        let doc = OnDemandDoc::parse(br#"["plain", "esc\u0041"]"#).unwrap();
        let mut elems = doc.root().elements();
        match elems.next().unwrap().as_str().unwrap() {
            Cow::Borrowed(s) => assert_eq!(s, "plain"),
            Cow::Owned(_) => panic!("escape-free string should borrow"),
        }
        match elems.next().unwrap().as_str().unwrap() {
            Cow::Owned(s) => assert_eq!(s, "escA"),
            Cow::Borrowed(_) => panic!("escaped string must decode"),
        }
    }

    #[test]
    fn surrogate_pair_decodes() {
        let doc = OnDemandDoc::parse("\"😀!\"".as_bytes()).unwrap();
        assert_eq!(doc.root().as_str().unwrap(), "😀!");
    }

    #[test]
    fn fields_preserve_order_and_duplicates() {
        let doc = OnDemandDoc::parse(br#"{"b":1,"a":2,"b":3}"#).unwrap();
        let keys: Vec<String> = doc
            .root()
            .fields()
            .map(|(k, _)| k.decode().into_owned())
            .collect();
        assert_eq!(keys, ["b", "a", "b"]);
    }

    #[test]
    fn number_classification_matches_parse() {
        let doc = OnDemandDoc::parse(b"[1, 1.0, 99999999999999999999999]").unwrap();
        let vals: Vec<Value> = doc.root().elements().map(|c| c.to_value()).collect();
        assert_eq!(vals[0], Value::int(1));
        assert_eq!(vals[1], Value::float(1.0));
        assert!(matches!(vals[2], Value::Num(Number::Float(_))));
    }

    #[test]
    fn scalar_accessors() {
        let doc = OnDemandDoc::parse(br#"{"i": 3, "f": 2.5, "b": true, "n": null}"#).unwrap();
        let root = doc.root();
        assert_eq!(root.get("i").unwrap().as_i64(), Some(3));
        assert_eq!(root.get("i").unwrap().as_f64(), Some(3.0));
        assert_eq!(root.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(root.get("f").unwrap().as_i64(), None);
        assert_eq!(root.get("b").unwrap().as_bool(), Some(true));
        assert!(root.get("n").unwrap().is_null());
    }
}
