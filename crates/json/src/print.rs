//! Compact and pretty JSON printers.
//!
//! The compact printer is the canonical textual form used by the JSON
//! baseline storage mode and by round-trip tests: `parse(to_string(v)) == v`
//! for every value (floats are printed with enough digits to round-trip).

use crate::value::{Number, Value};

/// Serialize a value to compact JSON (no whitespace).
pub fn to_string(v: &Value) -> String {
    let mut out = String::with_capacity(64);
    write_value(&mut out, v);
    out
}

/// Serialize a value with two-space indentation, for humans.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::with_capacity(128);
    write_pretty(&mut out, v, 0);
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_escaped_str(out, s),
        Value::Array(elems) => {
            out.push('[');
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, e);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped_str(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::Int(i) => {
            let mut buf = itoa_buf();
            out.push_str(format_i64(&mut buf, i));
        }
        Number::Float(f) => {
            // Shortest representation that round-trips; force a ".0" marker
            // when the result would look integral, so the value re-parses as
            // a float and the integer/float distinction of §3.4 survives.
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

/// Write `s` as a JSON string literal (quotes and escapes included).
pub fn write_escaped_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(elems) if !elems.is_empty() => {
            out.push_str("[\n");
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, e, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped_str(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

type ItoaBuf = [u8; 20];

fn itoa_buf() -> ItoaBuf {
    [0; 20]
}

/// Format an i64 into a stack buffer without allocating.
fn format_i64(buf: &mut ItoaBuf, v: i64) -> &str {
    if v == 0 {
        return "0";
    }
    let neg = v < 0;
    let mut pos = buf.len();
    // Work with the magnitude in u64 so i64::MIN does not overflow.
    let mut mag = v.unsigned_abs();
    while mag > 0 {
        pos -= 1;
        buf[pos] = b'0' + (mag % 10) as u8;
        mag /= 10;
    }
    if neg {
        pos -= 1;
        buf[pos] = b'-';
    }
    std::str::from_utf8(&buf[pos..]).expect("ascii digits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn compact_round_trip() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-1",
            "9223372036854775807",
            "-9223372036854775808",
            "2.5",
            "1.0",
            r#""hi""#,
            r#"[1,2,[3]]"#,
            r#"{"a":1,"b":{"c":[null,true]}}"#,
            "[]",
            "{}",
        ];
        for c in cases {
            let v = parse(c).unwrap();
            assert_eq!(to_string(&v), c, "case {c}");
        }
    }

    #[test]
    fn parse_print_parse_fixpoint() {
        let cases = [
            r#"{"s": "a\"b\\c\nd\te", "u": ""}"#,
            r#"{"f": 1e3, "g": -0.015, "big": 99999999999999999999999}"#,
            r#"{"emoji": "😀", "cjk": "日本語"}"#,
        ];
        for c in cases {
            let v = parse(c).unwrap();
            let printed = to_string(&v);
            assert_eq!(parse(&printed).unwrap(), v, "case {c}");
        }
    }

    #[test]
    fn float_keeps_float_type_through_round_trip() {
        let v = Value::float(3.0);
        let s = to_string(&v);
        assert_eq!(s, "3.0");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn control_chars_escaped() {
        let mut out = String::new();
        write_escaped_str(&mut out, "a\u{1}b");
        assert_eq!(out, "\"a\\u0001b\"");
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = parse(r#"{"a":[1,{"b":2}],"c":{}}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn format_i64_extremes() {
        let mut buf = itoa_buf();
        assert_eq!(format_i64(&mut buf, i64::MIN), "-9223372036854775808");
        let mut buf = itoa_buf();
        assert_eq!(format_i64(&mut buf, i64::MAX), "9223372036854775807");
        let mut buf = itoa_buf();
        assert_eq!(format_i64(&mut buf, 0), "0");
    }
}
