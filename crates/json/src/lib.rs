//! # jt-json — JSON text substrate
//!
//! A from-scratch RFC 8259 JSON implementation used by the JSON tiles
//! reproduction: a [`Value`] document model that preserves object key order,
//! a recursive-descent [`parse`] function with precise error positions, and a
//! compact [`to_string`] printer that round-trips every value.
//!
//! The paper stores the *raw JSON string* as one of its baselines ("JSON" in
//! Table 1): every attribute access must re-parse the full document. This
//! crate provides that baseline and is also the ingestion front end for the
//! binary JSONB format (`jt-jsonb`) and the tile extractor (`jt-core`).
//!
//! ```
//! let v = jt_json::parse(r#"{"id": 1, "user": {"name": "ada"}}"#).unwrap();
//! assert_eq!(v.pointer(&["user", "name"]).unwrap().as_str(), Some("ada"));
//! assert_eq!(jt_json::to_string(&v), r#"{"id":1,"user":{"name":"ada"}}"#);
//! ```

mod error;
mod index;
mod ondemand;
mod parse;
mod print;
mod value;

pub use error::{Error, ErrorKind, Result};
pub use ondemand::{ArrayIter, Cursor, Node, ObjectIter, OnDemandDoc, RawStr};
pub use parse::{parse, parse_bytes, Parser};
pub use print::{to_string, to_string_pretty, write_escaped_str};
pub use value::{Number, Value};
