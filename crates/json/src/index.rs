//! Structural index ("tape") construction for on-demand parsing.
//!
//! One scan over the raw bytes records where every value lives — string
//! spans with an escape flag, number spans with a float flag, container
//! extents with a skip pointer — without materializing a single value. The
//! cursor layer (`crate::ondemand`) then parses scalars lazily, directly
//! from the recorded byte spans, on first touch.
//!
//! The scanner is a line-by-line mirror of [`crate::parse`]: it accepts and
//! rejects exactly the same inputs and reports the same [`ErrorKind`] at the
//! same byte offset. Every control-flow branch below corresponds to one in
//! `parse.rs`; when editing either, keep them in lockstep (the differential
//! property suite in `tests/ondemand_differential.rs` enforces this).

use crate::error::{Error, ErrorKind, Result};
use crate::parse::{utf8_len, Parser};

/// String/key contains at least one backslash escape: decoding differs from
/// the raw span.
pub(crate) const FLAG_ESCAPED: u8 = 1 << 0;
/// Number has a fraction or exponent: classified `Float` without an i64
/// attempt, mirroring `parse_number`.
pub(crate) const FLAG_FLOAT: u8 = 1 << 1;

/// What a tape entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EntryKind {
    Null,
    True,
    False,
    Number,
    Str,
    /// An object member key. Always immediately followed by its value's
    /// subtree; never the target of a cursor.
    Key,
    Object,
    Array,
}

/// One structural position. Spans are byte offsets into the scanned input:
/// strings and keys record their *content* span (between the quotes),
/// numbers and literals their token span, containers their full extent
/// (opening to one past closing bracket). For containers `aux` is the tape
/// index one past the subtree — the skip pointer that makes sibling
/// navigation O(1) regardless of subtree size.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TapeEntry {
    pub kind: EntryKind,
    pub flags: u8,
    pub start: u32,
    pub end: u32,
    pub aux: u32,
}

/// The structural index of one document: entries in document order, objects
/// laid out as `Object, (Key, value-subtree)*`, arrays as
/// `Array, value-subtree*`.
#[derive(Clone, Debug)]
pub(crate) struct Tape {
    pub entries: Vec<TapeEntry>,
}

/// Tape index one past the subtree rooted at `idx`.
#[inline]
pub(crate) fn subtree_end(entries: &[TapeEntry], idx: usize) -> usize {
    let e = entries[idx];
    match e.kind {
        EntryKind::Object | EntryKind::Array => e.aux as usize,
        _ => idx + 1,
    }
}

/// Scan a complete JSON document into a tape. Same accept/reject set and
/// error positions as [`crate::parse_bytes`]. Documents of 4 GiB or more are
/// out of scope for the u32 span encoding (an NDJSON line at that size would
/// also exhaust the eager parser) and panic rather than mis-index.
pub(crate) fn build_tape(input: &[u8]) -> Result<Tape> {
    assert!(
        input.len() < u32::MAX as usize,
        "on-demand tape spans are u32; document too large"
    );
    let mut s = Scanner {
        input,
        pos: 0,
        tape: Vec::new(),
    };
    s.scan_value(0)?;
    s.skip_ws();
    if s.pos != s.input.len() {
        return Err(s.err(ErrorKind::TrailingData));
    }
    Ok(Tape { entries: s.tape })
}

struct Scanner<'a> {
    input: &'a [u8],
    pos: usize,
    tape: Vec<TapeEntry>,
}

impl<'a> Scanner<'a> {
    fn err(&self, kind: ErrorKind) -> Error {
        Error::new(kind, self.pos)
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    #[inline]
    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(x) if x == b => Ok(()),
            Some(x) => {
                self.pos -= 1;
                Err(self.err(ErrorKind::UnexpectedByte(x)))
            }
            None => Err(self.err(ErrorKind::UnexpectedEof)),
        }
    }

    #[inline]
    fn push(&mut self, kind: EntryKind, flags: u8, start: usize, end: usize) {
        self.tape.push(TapeEntry {
            kind,
            flags,
            start: start as u32,
            end: end as u32,
            aux: 0,
        });
    }

    fn scan_value(&mut self, depth: usize) -> Result<()> {
        if depth > Parser::MAX_DEPTH {
            return Err(self.err(ErrorKind::TooDeep));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'{') => self.scan_object(depth),
            Some(b'[') => self.scan_array(depth),
            Some(b'"') => self.scan_string(EntryKind::Str),
            Some(b't') => self.scan_literal(b"true", EntryKind::True),
            Some(b'f') => self.scan_literal(b"false", EntryKind::False),
            Some(b'n') => self.scan_literal(b"null", EntryKind::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.scan_number(),
            Some(b) => Err(self.err(ErrorKind::UnexpectedByte(b))),
        }
    }

    fn scan_literal(&mut self, lit: &[u8], kind: EntryKind) -> Result<()> {
        if self.input.len() - self.pos < lit.len()
            || &self.input[self.pos..self.pos + lit.len()] != lit
        {
            return Err(self.err(ErrorKind::BadLiteral));
        }
        let start = self.pos;
        self.pos += lit.len();
        self.push(kind, 0, start, self.pos);
        Ok(())
    }

    /// Patch a container's extent and skip pointer once its subtree closed.
    fn seal(&mut self, slot: usize) {
        let end = self.pos as u32;
        let aux = self.tape.len() as u32;
        let e = &mut self.tape[slot];
        e.end = end;
        e.aux = aux;
    }

    fn scan_object(&mut self, depth: usize) -> Result<()> {
        self.expect(b'{')?;
        let slot = self.tape.len();
        self.push(EntryKind::Object, 0, self.pos - 1, 0);
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.seal(slot);
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.scan_string(EntryKind::Key)?;
            self.skip_ws();
            self.expect(b':')?;
            self.scan_value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.seal(slot);
                    return Ok(());
                }
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::UnexpectedByte(b)));
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn scan_array(&mut self, depth: usize) -> Result<()> {
        self.expect(b'[')?;
        let slot = self.tape.len();
        self.push(EntryKind::Array, 0, self.pos - 1, 0);
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.seal(slot);
            return Ok(());
        }
        loop {
            self.scan_value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.seal(slot);
                    return Ok(());
                }
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::UnexpectedByte(b)));
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn scan_string(&mut self, kind: EntryKind) -> Result<()> {
        self.expect(b'"')?;
        // Fast path: scan for the closing quote; fall back to the escape
        // validator only when a backslash shows up. Raw multi-byte UTF-8 is
        // validated for the whole span at the close, as in `parse_string`.
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    let raw = &self.input[start..self.pos];
                    let end = self.pos;
                    self.pos += 1;
                    return match std::str::from_utf8(raw) {
                        Ok(_) => {
                            self.push(kind, 0, start, end);
                            Ok(())
                        }
                        Err(_) => Err(Error::new(ErrorKind::BadUtf8, start)),
                    };
                }
                Some(b'\\') => break,
                Some(b) if b < 0x20 => return Err(self.err(ErrorKind::BadEscape)),
                Some(_) => self.pos += 1,
            }
        }
        // Slow path with escapes: validate without decoding.
        let prefix = &self.input[start..self.pos];
        if std::str::from_utf8(prefix).is_err() {
            return Err(Error::new(ErrorKind::BadUtf8, start));
        }
        loop {
            match self.bump() {
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    self.push(kind, FLAG_ESCAPED, start, self.pos - 1);
                    return Ok(());
                }
                Some(b'\\') => self.check_escape()?,
                Some(b) if b < 0x20 => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::BadEscape));
                }
                Some(b) if b < 0x80 => {}
                Some(_) => {
                    let seq_start = self.pos - 1;
                    let len = utf8_len(self.input[seq_start]);
                    if len == 0 || seq_start + len > self.input.len() {
                        return Err(Error::new(ErrorKind::BadUtf8, seq_start));
                    }
                    if std::str::from_utf8(&self.input[seq_start..seq_start + len]).is_err() {
                        return Err(Error::new(ErrorKind::BadUtf8, seq_start));
                    }
                    self.pos = seq_start + len;
                }
            }
        }
    }

    /// Validate one escape sequence; the decoded character is produced later
    /// by `ondemand::decode_escaped`, only if the string is touched.
    fn check_escape(&mut self) -> Result<()> {
        match self.bump() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => Ok(()),
            Some(b'u') => {
                let hi = self.scan_hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low surrogate.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err(ErrorKind::BadUnicode));
                    }
                    let lo = self.scan_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err(ErrorKind::BadUnicode));
                    }
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(c).ok_or_else(|| self.err(ErrorKind::BadUnicode))?;
                    Ok(())
                } else if (0xDC00..0xE000).contains(&hi) {
                    Err(self.err(ErrorKind::BadUnicode))
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err(ErrorKind::BadUnicode))?;
                    Ok(())
                }
            }
            Some(_) => {
                self.pos -= 1;
                Err(self.err(ErrorKind::BadEscape))
            }
        }
    }

    fn scan_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err(ErrorKind::UnexpectedEof))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::BadUnicode));
                }
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn scan_number(&mut self) -> Result<()> {
        let start = self.pos;
        let mut is_float = false;
        let mut has_exp = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or [1-9][0-9]*.
        let int_start = self.pos;
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err(ErrorKind::BadNumber));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err(ErrorKind::BadNumber)),
        }
        let int_digits = self.pos - int_start;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            has_exp = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // `parse_number` rejects literals whose f64 value is non-finite.
        // Overflow past f64::MAX needs an exponent or at least 309 integer
        // digits (a 308-digit integer tops out below 1e308 and a fraction
        // adds less than one), so parsing eagerly in exactly those cases
        // keeps the accept/reject set identical without paying a float
        // parse per ordinary number.
        if has_exp || int_digits >= 309 {
            let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
            match text.parse::<f64>() {
                Ok(f) if f.is_finite() => {}
                _ => return Err(Error::new(ErrorKind::BadNumber, start)),
            }
        }
        self.push(
            EntryKind::Number,
            if is_float { FLAG_FLOAT } else { 0 },
            start,
            self.pos,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<EntryKind> {
        build_tape(input.as_bytes())
            .unwrap()
            .entries
            .iter()
            .map(|e| e.kind)
            .collect()
    }

    #[test]
    fn tape_layout_object() {
        use EntryKind::*;
        assert_eq!(
            kinds(r#"{"a": 1, "b": [true, null]}"#),
            vec![Object, Key, Number, Key, Array, True, Null]
        );
    }

    #[test]
    fn skip_pointers_jump_subtrees() {
        let t = build_tape(br#"{"a": {"x": [1, 2]}, "b": 3}"#).unwrap();
        // Entry 2 is the inner object; its subtree spans entries 2..7
        // (Object, Key "x", Array, Number, Number).
        assert_eq!(t.entries[2].kind, EntryKind::Object);
        assert_eq!(subtree_end(&t.entries, 2), 7);
        assert_eq!(t.entries[7].kind, EntryKind::Key); // "b"
    }

    #[test]
    fn string_flags_and_spans() {
        let input = br#"["plain", "esc\n"]"#;
        let t = build_tape(input).unwrap();
        let s0 = t.entries[1];
        assert_eq!(&input[s0.start as usize..s0.end as usize], b"plain");
        assert_eq!(s0.flags & FLAG_ESCAPED, 0);
        let s1 = t.entries[2];
        assert_eq!(&input[s1.start as usize..s1.end as usize], b"esc\\n");
        assert_ne!(s1.flags & FLAG_ESCAPED, 0);
    }

    #[test]
    fn number_flags() {
        let t = build_tape(b"[1, 2.5, 1e3, 99999999999999999999999]").unwrap();
        assert_eq!(t.entries[1].flags & FLAG_FLOAT, 0);
        assert_ne!(t.entries[2].flags & FLAG_FLOAT, 0);
        assert_ne!(t.entries[3].flags & FLAG_FLOAT, 0);
        // Huge integer: no float flag, classified at read time.
        assert_eq!(t.entries[4].flags & FLAG_FLOAT, 0);
    }

    #[test]
    fn rejects_what_parse_rejects() {
        for bad in [
            "",
            "tru",
            "nul",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{1: 2}",
            "01",
            "1.",
            "-",
            "1e",
            "\"abc",
            "\"\\x\"",
            "\"\\u12g4\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "1 2",
            "[1] []",
            "1e999999",
        ] {
            let eager = crate::parse(bad).unwrap_err();
            let tape = build_tape(bad.as_bytes()).unwrap_err();
            assert_eq!(eager, tape, "input {bad:?}");
        }
    }

    #[test]
    fn error_positions_match_parse() {
        for bad in ["[1, x]", "  {", "\"a\nb\"", "{\"k\": 0123}"] {
            let eager = crate::parse(bad).unwrap_err();
            let tape = build_tape(bad.as_bytes()).unwrap_err();
            assert_eq!(eager, tape, "input {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_bounded_like_parse() {
        let deep = "[".repeat(Parser::MAX_DEPTH + 2) + &"]".repeat(Parser::MAX_DEPTH + 2);
        let e = build_tape(deep.as_bytes()).unwrap_err();
        assert_eq!(e, crate::parse(&deep).unwrap_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(build_tape(ok.as_bytes()).is_ok());
    }
}
