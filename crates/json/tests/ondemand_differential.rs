//! Differential properties: the on-demand cursor vs the eager parser.
//!
//! The structural-index scanner promises *validation parity* with
//! `jt_json::parse` — same accept/reject set, same error kind at the same
//! byte offset — and the cursor layer promises *value parity* on every
//! touched path. Both are checked here against randomized documents and
//! randomized corruptions, so any drift between `parse.rs` and `index.rs`
//! shows up as a counterexample rather than a silent ingestion divergence.

use jt_json::{parse, Number, OnDemandDoc, Value};
use proptest::prelude::*;

/// Arbitrary documents exercising every value shape: nested containers,
/// duplicate keys, escapes, non-ASCII text, and both number classes.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::int),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::float),
        "\\PC{0,16}".prop_map(Value::str),
    ];
    leaf.prop_recursive(4, 48, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::vec(("[a-d \\\\\"\\PC]{0,5}", inner), 0..5)
                .prop_map(|m| Value::Object(m.into_iter().collect())),
        ]
    })
}

/// A byte-level corruption: truncate, splice a random byte, or delete one.
fn mutate(text: &str, choice: u8, at: usize, with: u8) -> Vec<u8> {
    let bytes = text.as_bytes();
    if bytes.is_empty() {
        return vec![with];
    }
    let at = at % bytes.len();
    let mut out = bytes.to_vec();
    match choice % 3 {
        0 => out.truncate(at),
        1 => out[at] = with,
        _ => {
            out.remove(at);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Valid documents: the lazily materialized tree is bit-identical to
    // the eager parse of the same bytes.
    #[test]
    fn to_value_matches_eager_parse(v in arb_value()) {
        let text = jt_json::to_string(&v);
        let eager = parse(&text).expect("printer emits valid JSON");
        let doc = OnDemandDoc::parse(text.as_bytes()).expect("parity on accept");
        prop_assert_eq!(doc.root().to_value(), eager);
    }

    // Every individually touched path agrees with the eager tree: object
    // member walks, array indexing, and scalar accessors.
    #[test]
    fn touched_paths_agree(v in arb_value()) {
        let text = jt_json::to_string(&v);
        let eager = parse(&text).unwrap();
        let doc = OnDemandDoc::parse(text.as_bytes()).unwrap();
        check_paths(&eager, doc.root());
    }

    // Corrupted documents: both parsers agree on accept vs reject, and on
    // rejection report the same error kind at the same byte offset.
    #[test]
    fn mutations_reject_identically(
        v in arb_value(),
        choice in any::<u8>(),
        at in 0usize..4096,
        with in any::<u8>(),
    ) {
        let mutated = mutate(&jt_json::to_string(&v), choice, at, with);
        let eager = jt_json::parse_bytes(&mutated);
        let ondemand = OnDemandDoc::parse(&mutated).map(|d| d.root().to_value());
        match (eager, ondemand) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "accept/reject divergence on {:?}: eager={:?} ondemand={:?}",
                String::from_utf8_lossy(&mutated), a.is_ok(), b.is_ok()
            ),
        }
    }
}

/// Recursively compare every navigable path between the eager tree and the
/// cursor, exercising the lazy accessors (not just `to_value`).
fn check_paths(eager: &Value, cursor: jt_json::Cursor<'_>) {
    match eager {
        Value::Null => assert!(cursor.is_null()),
        Value::Bool(b) => assert_eq!(cursor.as_bool(), Some(*b)),
        Value::Num(Number::Int(i)) => {
            assert_eq!(cursor.as_i64(), Some(*i));
            assert_eq!(cursor.as_f64(), Some(*i as f64));
        }
        Value::Num(Number::Float(f)) => {
            assert_eq!(cursor.as_i64(), None);
            assert_eq!(cursor.as_f64(), Some(*f));
        }
        Value::Str(s) => assert_eq!(cursor.as_str().as_deref(), Some(s.as_str())),
        Value::Array(elems) => {
            let children: Vec<_> = cursor.elements().collect();
            assert_eq!(children.len(), elems.len());
            for (i, (e, c)) in elems.iter().zip(&children).enumerate() {
                // Random access must agree with iteration order.
                assert_eq!(cursor.get_index(i).unwrap().to_value(), c.to_value());
                check_paths(e, *c);
            }
        }
        Value::Object(members) => {
            let fields: Vec<_> = cursor.fields().collect();
            assert_eq!(fields.len(), members.len());
            for ((ek, ev), (ck, cv)) in members.iter().zip(&fields) {
                assert_eq!(ck.decode().as_ref(), ek.as_str());
                check_paths(ev, *cv);
            }
            // Keyed lookup takes the last duplicate, like Value::get.
            for (k, _) in members {
                let via_cursor = cursor.get(k).map(|c| c.to_value());
                let via_value = eager.get(k).cloned();
                assert_eq!(via_cursor, via_value);
            }
        }
    }
}
