//! Property-based tests: printing then parsing any value is the identity.

use jt_json::{parse, to_string, to_string_pretty, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values with bounded depth and size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::int),
        // Finite floats only; NaN/inf are not representable in JSON.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::float),
        "\\PC{0,16}".prop_map(Value::str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(("\\PC{0,8}", inner), 0..6)
                .prop_map(|m| Value::Object(m.into_iter().collect())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(v in arb_value()) {
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_parse_round_trip(v in arb_value()) {
        let text = to_string_pretty(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_bytes(b in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = jt_json::parse_bytes(&b);
    }
}
