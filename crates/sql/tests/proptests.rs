//! Property tests: the SQL front end is total — arbitrary input never
//! panics, and generated well-formed queries always compile and execute
//! with results matching a brute-force evaluation.

use jt_core::{Relation, TilesConfig};
use jt_json::Value;
use proptest::prelude::*;

fn docs() -> Vec<Value> {
    (0..200)
        .map(|i| {
            jt_json::parse(&format!(
                r#"{{"k":{i},"g":"{}","f":{}.25}}"#,
                ["a", "b", "c"][i % 3],
                i % 7
            ))
            .unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tokenizer_never_panics(s in "\\PC{0,80}") {
        let _ = jt_sql::tokenize(&s);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,80}") {
        let _ = jt_sql::parse_select(&s);
    }

    #[test]
    fn parser_never_panics_on_sqlish(
        key in "[a-z]{1,6}",
        num in any::<i32>(),
        kw in prop::sample::select(vec!["AND", "OR", "NOT", "GROUP BY", "ORDER BY", "LIMIT", "->>", "::INT"]),
    ) {
        let q = format!("SELECT data->>'{key}' FROM t WHERE data->>'{key}'::INT > {num} {kw}");
        let _ = jt_sql::parse_select(&q);
    }

    #[test]
    fn generated_filters_match_brute_force(threshold in 0i64..200, pick_group in 0usize..3) {
        let d = docs();
        let rel = Relation::load(&d, TilesConfig::default());
        let group = ["a", "b", "c"][pick_group];
        let sql = format!(
            "SELECT COUNT(*) FROM t WHERE data->>'k'::INT < {threshold} AND data->>'g' = '{group}'"
        );
        let r = jt_sql::query(&sql, &[("t", &rel)]).unwrap();
        let brute = d
            .iter()
            .filter(|doc| {
                doc.get("k").unwrap().as_i64().unwrap() < threshold
                    && doc.get("g").unwrap().as_str() == Some(group)
            })
            .count() as i64;
        prop_assert_eq!(r.column(0)[0].as_i64(), Some(brute));
    }

    #[test]
    fn generated_group_bys_cover_all_rows(limit in 1usize..5) {
        let d = docs();
        let rel = Relation::load(&d, TilesConfig::default());
        let sql = format!(
            "SELECT data->>'g' AS g, COUNT(*) FROM t GROUP BY g ORDER BY 2 DESC LIMIT {limit}"
        );
        let r = jt_sql::query(&sql, &[("t", &rel)]).unwrap();
        prop_assert!(r.rows() <= limit);
        let total: i64 = r.column(1).iter().map(|s| s.as_i64().unwrap()).sum();
        prop_assert!(total <= 200);
        if limit >= 3 {
            prop_assert_eq!(total, 200, "all three groups shown");
        }
    }
}
