//! End-to-end SQL tests: parse → compile → execute, validated against
//! hand-built `jt-query` plans and brute-force answers.

use jt_core::{Relation, StorageMode, TilesConfig};
use jt_json::Value;
use jt_query::{col, lit, AccessType, Agg, ExecOptions, Query};
use jt_sql::query;

fn sales_docs() -> Vec<Value> {
    (0..400)
        .map(|i| {
            jt_json::parse(&format!(
                r#"{{"id":{i},"region":"{}","amount":"{}.{:02}","qty":{},"day":"2024-{:02}-15","user":{{"vip":{}}}}}"#,
                ["north", "south", "east", "west"][i % 4],
                10 + i % 90,
                i % 100,
                1 + i % 9,
                1 + i % 12,
                i % 5 == 0,
            ))
            .unwrap()
        })
        .collect()
}

fn orders_docs() -> Vec<Value> {
    (0..100)
        .map(|i| {
            jt_json::parse(&format!(
                r#"{{"o_id":{i},"o_region":"{}"}}"#,
                ["north", "south", "east", "west"][i % 4]
            ))
            .unwrap()
        })
        .collect()
}

fn load(docs: &[Value]) -> Relation {
    Relation::load(
        docs,
        TilesConfig {
            tile_size: 128,
            partition_size: 2,
            ..TilesConfig::default()
        },
    )
}

#[test]
fn simple_aggregate() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT COUNT(*), SUM(data->>'qty'::INT) FROM sales",
        &[("sales", &rel)],
    )
    .unwrap();
    assert_eq!(r.column(0)[0].as_i64(), Some(400));
    let brute: i64 = sales_docs()
        .iter()
        .map(|d| d.get("qty").unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(r.column(1)[0].as_i64(), Some(brute));
}

#[test]
fn group_by_alias_order_limit() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT data->>'region' AS region, COUNT(*) AS n, SUM(data->>'amount'::DECIMAL) \
         FROM sales WHERE data->>'qty'::INT >= 3 \
         GROUP BY region ORDER BY 3 DESC LIMIT 2",
        &[("sales", &rel)],
    )
    .unwrap();
    assert_eq!(r.rows(), 2);
    // Equivalent hand-built plan.
    let hand = Query::scan("s", &rel)
        .access("region", AccessType::Text)
        .access("qty", AccessType::Int)
        .access("amount", AccessType::Numeric)
        .filter(col("qty").ge(lit(3)))
        .aggregate(
            vec![col("region")],
            vec![Agg::count_star(), Agg::sum(col("amount"))],
        )
        .order_by(2, true)
        .limit(2)
        .run();
    assert_eq!(r.to_lines(), hand.to_lines());
}

#[test]
fn join_via_where_equality() {
    let sales = load(&sales_docs());
    let orders = load(&orders_docs());
    let r = query(
        "SELECT o.data->>'o_region', COUNT(*) \
         FROM sales s, orders o \
         WHERE s.data->>'region' = o.data->>'o_region' \
           AND s.data->>'qty'::INT > 5 \
         GROUP BY 1 ORDER BY 1",
        &[("sales", &sales), ("orders", &orders)],
    )
    .unwrap();
    assert_eq!(r.rows(), 4);
    // Brute force: per region, qty>5 sales × region orders.
    let s = sales_docs();
    let o = orders_docs();
    for row in 0..r.rows() {
        let region = r.column(0)[row].as_str().unwrap().to_owned();
        let count = r.column(1)[row].as_i64().unwrap();
        let expect = s
            .iter()
            .filter(|d| {
                d.get("region").unwrap().as_str() == Some(&region)
                    && d.get("qty").unwrap().as_i64().unwrap() > 5
            })
            .count()
            * o.iter()
                .filter(|d| d.get("o_region").unwrap().as_str() == Some(&region))
                .count();
        assert_eq!(count, expect as i64, "region {region}");
    }
}

#[test]
fn nested_access_and_bool_cast() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT COUNT(*) FROM t WHERE data->'user'->>'vip'::BOOL = TRUE",
        &[("t", &rel)],
    )
    .unwrap();
    assert_eq!(r.column(0)[0].as_i64(), Some(80));
}

#[test]
fn date_literals_and_extract() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT EXTRACT(YEAR FROM data->>'day'::DATE), COUNT(*) FROM t \
         WHERE data->>'day'::DATE >= DATE '2024-06-01' GROUP BY 1",
        &[("t", &rel)],
    )
    .unwrap();
    assert_eq!(r.rows(), 1);
    assert_eq!(r.column(0)[0].as_i64(), Some(2024));
    let brute = sales_docs()
        .iter()
        .filter(|d| d.get("day").unwrap().as_str().unwrap() >= "2024-06-01")
        .count();
    assert_eq!(r.column(1)[0].as_i64(), Some(brute as i64));
}

#[test]
fn having_and_like_and_in() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT data->>'region' AS g, COUNT(*) FROM t \
         WHERE data->>'region' LIKE '%th' AND data->>'region' IN ('north','south','east') \
         GROUP BY g HAVING COUNT(*) > 10 ORDER BY g",
        &[("t", &rel)],
    )
    .unwrap();
    assert_eq!(r.rows(), 2, "north and south end with 'th'");
    assert_eq!(r.column(0)[0].as_str(), Some("north"));
    assert_eq!(r.column(0)[1].as_str(), Some("south"));
}

#[test]
fn having_with_unselected_aggregate() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT data->>'region', COUNT(*) FROM t GROUP BY 1 HAVING SUM(data->>'qty'::INT) > 400 ORDER BY 1",
        &[("t", &rel)],
    )
    .unwrap();
    // Hidden aggregate is computed but not projected.
    assert!(r.rows() >= 1);
    assert_eq!(r.chunk.width(), 2, "only the selected columns survive");
}

#[test]
fn scalar_select_without_aggregation() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT data->>'id'::INT, data->>'region' FROM t WHERE data->>'id'::INT < 3 ORDER BY 1",
        &[("t", &rel)],
    )
    .unwrap();
    assert_eq!(r.rows(), 3);
    assert_eq!(r.column(0)[2].as_i64(), Some(2));
}

#[test]
fn identical_results_across_modes() {
    let docs = sales_docs();
    let sql = "SELECT data->>'region' AS g, COUNT(*), AVG(data->>'amount'::DECIMAL) \
               FROM t WHERE data->>'qty'::INT <> 4 GROUP BY g ORDER BY g";
    let mut expected: Option<Vec<String>> = None;
    for mode in [
        StorageMode::JsonText,
        StorageMode::Jsonb,
        StorageMode::Sinew,
        StorageMode::Tiles,
    ] {
        let rel = Relation::load(&docs, TilesConfig::with_mode(mode));
        let r = jt_sql::query_with(sql, &[("t", &rel)], ExecOptions::default()).unwrap();
        let lines = r.to_lines();
        match &expected {
            None => expected = Some(lines),
            Some(e) => assert_eq!(e, &lines, "{mode:?}"),
        }
    }
}

#[test]
fn tpch_q10_figure5_style() {
    // The Figure 5 query, in SQL, over the combined TPC-H relation.
    let data = jt_data::tpch::generate(jt_data::tpch::TpchConfig {
        scale: 0.05,
        seed: 11,
    });
    let combined = data.combined();
    let rel = load(&combined);
    let r = query(
        "SELECT c.data->>'c_custkey'::BIGINT AS ck, \
                SUM(l.data->>'l_extendedprice'::DECIMAL * (1 - l.data->>'l_discount'::DECIMAL)) \
         FROM customer c, orders o, lineitem l \
         WHERE l.data->>'l_orderkey'::BIGINT = o.data->>'o_orderkey'::BIGINT \
           AND o.data->>'o_custkey'::BIGINT = c.data->>'c_custkey'::BIGINT \
         GROUP BY ck ORDER BY 2 DESC LIMIT 10",
        &[("customer", &rel), ("orders", &rel), ("lineitem", &rel)],
    )
    .unwrap();
    assert!(r.rows() > 0);
    // Revenues are positive and sorted descending.
    let revs: Vec<f64> = r.column(1).iter().map(|s| s.as_f64().unwrap()).collect();
    assert!(revs.windows(2).all(|w| w[0] >= w[1]));
    assert!(revs.iter().all(|&v| v > 0.0));
}

#[test]
fn order_by_limit_takes_top_k_and_matches_full_sort() {
    // 2000 rows with a duplicate-heavy key: big enough for the parallel
    // sort, and LIMIT 10 is deep in top-K territory.
    let docs: Vec<Value> = (0..2000)
        .map(|i: i64| {
            jt_json::parse(&format!(
                r#"{{"k":{},"f":{}.5,"id":{i}}}"#,
                (i * 37) % 200,
                (i * 13) % 500
            ))
            .unwrap()
        })
        .collect();
    let rel = load(&docs);
    let tables: &[(&str, &Relation)] = &[("t", &rel)];
    let base = "SELECT data->>'k'::INT, data->>'f'::FLOAT, data->>'id'::INT FROM t \
                ORDER BY 1 DESC, 2";
    let full = query(base, tables).unwrap();
    for threads in [1usize, 2, 8] {
        let limited = jt_sql::query_with(
            &format!("{base} LIMIT 10"),
            tables,
            ExecOptions {
                threads,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(limited.rows(), 10);
        // Top-K must equal full-sort-then-truncate, row for row.
        for r in 0..10 {
            for c in 0..full.chunk.width() {
                assert_eq!(
                    limited.chunk.get(r, c),
                    full.chunk.get(r, c),
                    "row {r} col {c} at threads={threads}"
                );
            }
        }
        let stage = limited
            .profile
            .stages
            .iter()
            .find(|s| s.name == "top-k")
            .expect("ORDER BY + LIMIT 10 over 2000 rows must take the top-K path");
        assert!(stage.threads >= 1 && stage.partitions >= 1);
    }
    // EXPLAIN advertises the pushed-down bound.
    let out = jt_sql::execute(
        &format!("EXPLAIN {base} LIMIT 10"),
        tables,
        ExecOptions::default(),
    )
    .unwrap();
    let jt_sql::SqlOutput::Plan(plan) = out else {
        panic!("EXPLAIN must produce a plan");
    };
    assert!(
        plan.contains("order-by keys=2 (top-k bound 10)"),
        "plan must show the top-K bound:\n{plan}"
    );
    assert!(
        plan.contains("limit 10"),
        "plan keeps the limit line:\n{plan}"
    );
}

#[test]
fn offset_matches_full_sort_then_slice() {
    let docs: Vec<Value> = (0..2000)
        .map(|i: i64| jt_json::parse(&format!(r#"{{"k":{},"id":{i}}}"#, (i * 37) % 200)).unwrap())
        .collect();
    let rel = load(&docs);
    let tables: &[(&str, &Relation)] = &[("t", &rel)];
    let base = "SELECT data->>'k'::INT, data->>'id'::INT FROM t ORDER BY 1 DESC, 2";
    let full = query(base, tables).unwrap();

    // LIMIT n OFFSET m must equal full-sort-then-slice rows m..m+n, at
    // every thread count (the top-K bound becomes n+m under the hood).
    for threads in [1usize, 2, 8] {
        let paged = jt_sql::query_with(
            &format!("{base} LIMIT 10 OFFSET 25"),
            tables,
            ExecOptions {
                threads,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(paged.rows(), 10);
        for r in 0..10 {
            for c in 0..full.chunk.width() {
                assert_eq!(
                    paged.chunk.get(r, c),
                    full.chunk.get(25 + r, c),
                    "row {r} col {c} at threads={threads}"
                );
            }
        }
    }

    // OFFSET without LIMIT: the remainder of the full sort.
    let tail = query(&format!("{base} OFFSET 1990"), tables).unwrap();
    assert_eq!(tail.rows(), 10);
    for r in 0..10 {
        assert_eq!(tail.chunk.get(r, 0), full.chunk.get(1990 + r, 0));
    }

    // OFFSET past the result is empty, not an error.
    let past = query(&format!("{base} LIMIT 5 OFFSET 5000"), tables).unwrap();
    assert_eq!(past.rows(), 0);

    // OFFSET on an unsorted query just skips leading rows.
    let unsorted = query("SELECT data->>'id'::INT FROM t OFFSET 1995", tables).unwrap();
    assert_eq!(unsorted.rows(), 5);

    // EXPLAIN: the top-K bound absorbs the offset, and the offset is shown.
    let out = jt_sql::execute(
        &format!("EXPLAIN {base} LIMIT 10 OFFSET 25"),
        tables,
        ExecOptions::default(),
    )
    .unwrap();
    let jt_sql::SqlOutput::Plan(plan) = out else {
        panic!("EXPLAIN must produce a plan");
    };
    assert!(
        plan.contains("order-by keys=2 (top-k bound 35)"),
        "top-K bound must be limit+offset:\n{plan}"
    );
    assert!(plan.contains("offset 25"), "plan shows offset:\n{plan}");
    assert!(plan.contains("limit 10"), "plan keeps limit:\n{plan}");
}

#[test]
fn error_reporting() {
    let rel = load(&sales_docs());
    let tables: &[(&str, &Relation)] = &[("t", &rel)];
    for bad in [
        "SELECT data->>'x' FROM missing",
        "SELECT nope FROM t",
        "SELECT data->>'x' FROM t GROUP BY 9",
        "SELECT data->>'x', COUNT(*) FROM t GROUP BY 1 ORDER BY zz",
        "SELECT data->>'a' FROM t HAVING COUNT(*) > 1",
        "SELECT COUNT(*) FROM t WHERE data->>'x' LIKE '%a%b%'",
    ] {
        assert!(query(bad, tables).is_err(), "should fail: {bad}");
    }
}

#[test]
fn order_by_expression_appends_hidden_sort_slot() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT data->>'id'::INT, data->>'qty'::INT FROM t \
         WHERE data->>'id'::INT < 30 \
         ORDER BY data->>'id'::INT + data->>'qty'::INT DESC, 1",
        &[("t", &rel)],
    )
    .unwrap();
    // The sort expression rides along as a hidden slot; the visible
    // output stays two columns wide.
    assert_eq!(r.chunk.width(), 2);
    let mut expect: Vec<(i64, i64)> = sales_docs()
        .iter()
        .filter_map(|d| {
            let id = d.get("id").unwrap().as_i64().unwrap();
            (id < 30).then(|| (id, d.get("qty").unwrap().as_i64().unwrap()))
        })
        .collect();
    expect.sort_by(|a, b| (b.0 + b.1).cmp(&(a.0 + a.1)).then(a.0.cmp(&b.0)));
    let got: Vec<(i64, i64)> = (0..r.rows())
        .map(|i| {
            (
                r.column(0)[i].as_i64().unwrap(),
                r.column(1)[i].as_i64().unwrap(),
            )
        })
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn order_by_select_alias_desc() {
    let rel = load(&sales_docs());
    let r = query(
        "SELECT data->>'region' AS region, SUM(data->>'qty'::INT) AS total \
         FROM t GROUP BY region ORDER BY total DESC",
        &[("t", &rel)],
    )
    .unwrap();
    assert_eq!(r.rows(), 4);
    let totals: Vec<i64> = (0..4).map(|i| r.column(1)[i].as_i64().unwrap()).collect();
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "descending totals: {totals:?}"
    );
    let hand = Query::scan("t", &rel)
        .access("region", AccessType::Text)
        .access("qty", AccessType::Int)
        .aggregate(vec![col("region")], vec![Agg::sum(col("qty"))])
        .order_by(1, true)
        .run();
    assert_eq!(r.to_lines(), hand.to_lines());
}

#[test]
fn order_by_expression_on_aggregate_output() {
    let rel = load(&sales_docs());
    // The sort key mixes two aggregates; neither alias nor ordinal names
    // it, so it compiles into a hidden slot in aggregate-output context.
    let r = query(
        "SELECT data->>'region' AS region, SUM(data->>'qty'::INT) AS total, COUNT(*) AS n \
         FROM t GROUP BY region ORDER BY total - n DESC, region",
        &[("t", &rel)],
    )
    .unwrap();
    assert_eq!(r.chunk.width(), 3);
    let diffs: Vec<i64> = (0..r.rows())
        .map(|i| r.column(1)[i].as_i64().unwrap() - r.column(2)[i].as_i64().unwrap())
        .collect();
    assert!(
        diffs.windows(2).all(|w| w[0] >= w[1]),
        "descending total-n: {diffs:?}"
    );
}
