//! Golden-file planner tests: every query here records its full planning
//! artifact — SQL text, parsed AST, canonical logical plan, each rewrite
//! pass's delta, the lowered physical `EXPLAIN` tree, and the executed
//! result rows — into `tests/golden/<name>.golden`.
//!
//! A mismatch means the planner's observable behavior changed; review the
//! diff and regenerate with:
//!
//! ```text
//! JT_BLESS=1 cargo test -p jt-sql --test golden_plans
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use jt_core::{Relation, TilesConfig};
use jt_query::ExecOptions;

fn sales_docs() -> Vec<jt_json::Value> {
    (0..400)
        .map(|i| {
            jt_json::parse(&format!(
                r#"{{"id":{i},"region":"{}","amount":"{}.{:02}","qty":{},"day":"2024-{:02}-15"}}"#,
                ["north", "south", "east", "west"][i % 4],
                10 + i % 90,
                i % 100,
                1 + i % 9,
                1 + i % 12,
            ))
            .unwrap()
        })
        .collect()
}

fn orders_docs() -> Vec<jt_json::Value> {
    (0..100)
        .map(|i| {
            jt_json::parse(&format!(
                r#"{{"o_id":{i},"o_region":"{}","o_qty":{}}}"#,
                ["north", "south", "east", "west"][i % 4],
                1 + i % 5,
            ))
            .unwrap()
        })
        .collect()
}

fn load(docs: &[jt_json::Value]) -> Relation {
    Relation::load(
        docs,
        TilesConfig {
            tile_size: 128,
            partition_size: 2,
            ..TilesConfig::default()
        },
    )
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.golden"))
}

/// Compare `actual` against the stored golden, or rewrite it when
/// `JT_BLESS` is set.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("JT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); create it with JT_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "plan golden {name:?} changed; review the diff, then regenerate \
         with `JT_BLESS=1 cargo test -p jt-sql --test golden_plans`"
    );
}

/// The full planning artifact for one statement.
fn render(sql: &str, tables: &[(&str, &Relation)]) -> String {
    let stmt = jt_sql::parse_select(sql).expect("parse");
    let catalog: jt_sql::Catalog<'_> = tables.iter().copied().collect();
    let lp = jt_sql::plan(&stmt, &catalog).expect("plan");
    let planned = jt_query::plan_and_lower(lp, &jt_query::PlannerOptions::default());
    let mut out = String::new();
    writeln!(out, "=== sql ===").unwrap();
    writeln!(out, "{}", sql.trim()).unwrap();
    writeln!(out, "=== ast ===").unwrap();
    writeln!(out, "{stmt:#?}").unwrap();
    out.push_str(&jt_query::explain_text(&planned));
    writeln!(out, "=== results ===").unwrap();
    for line in planned.query.run_with(ExecOptions::default()).to_lines() {
        writeln!(out, "{line}").unwrap();
    }
    out
}

#[test]
fn golden_plans() {
    let sales = load(&sales_docs());
    let orders = load(&orders_docs());
    let tables: &[(&str, &Relation)] = &[("sales", &sales), ("orders", &orders)];
    let cases: &[(&str, &str)] = &[
        (
            "simple_aggregate",
            "SELECT COUNT(*), SUM(data->>'qty'::INT) FROM sales",
        ),
        (
            "filter_group_order_limit",
            "SELECT data->>'region' AS region, COUNT(*) AS n, SUM(data->>'amount'::DECIMAL) \
             FROM sales WHERE data->>'qty'::INT >= 3 \
             GROUP BY region ORDER BY 3 DESC LIMIT 2",
        ),
        (
            "join_pushdown",
            "SELECT o.data->>'o_region', COUNT(*) \
             FROM sales s, orders o \
             WHERE s.data->>'region' = o.data->>'o_region' \
               AND s.data->>'qty'::INT > 5 \
             GROUP BY 1 ORDER BY 1",
        ),
        (
            "order_by_expression",
            "SELECT data->>'id'::INT, data->>'qty'::INT FROM sales \
             WHERE data->>'id'::INT < 8 \
             ORDER BY data->>'id'::INT + data->>'qty'::INT DESC, 1",
        ),
        (
            "order_by_alias_desc",
            "SELECT data->>'region' AS region, SUM(data->>'qty'::INT) AS total \
             FROM sales GROUP BY region ORDER BY total DESC",
        ),
        (
            "limit_offset_bounds",
            "SELECT data->>'id'::INT FROM sales ORDER BY 1 LIMIT 5 OFFSET 10",
        ),
        (
            "having",
            "SELECT data->>'region', COUNT(*) FROM sales \
             GROUP BY 1 HAVING SUM(data->>'qty'::INT) > 400 ORDER BY 1",
        ),
    ];
    for (name, sql) in cases {
        check(name, &render(sql, tables));
    }
}
