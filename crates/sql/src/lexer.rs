//! SQL tokenizer for the JSON-analytics dialect.

use crate::{err, SqlError};

/// One token, with its byte offset for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword (stored lowercased; keywords are
    /// recognized by the parser).
    Ident(String),
    /// `'single quoted'` string literal (escaping: doubled quotes).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `->` JSON access.
    Arrow,
    /// `->>` JSON text access.
    ArrowText,
    /// `::` cast.
    Cast,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
}

/// Tokenize SQL text; returns `(token, byte offset)` pairs.
pub fn tokenize(sql: &str) -> Result<Vec<(Token, usize)>, SqlError> {
    let b = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
            }
            b'-' if b.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'-' if b.get(i + 1) == Some(&b'>') => {
                if b.get(i + 2) == Some(&b'>') {
                    out.push((Token::ArrowText, start));
                    i += 3;
                } else {
                    out.push((Token::Arrow, start));
                    i += 2;
                }
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.push((Token::Cast, start));
                i += 2;
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => return err("unterminated string literal", start),
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Copy one UTF-8 scalar.
                            let rest = &sql[i..];
                            let ch = rest.chars().next().expect("in bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push((Token::Str(s), start));
            }
            b'0'..=b'9' => {
                let mut j = i;
                let mut is_float = false;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.') {
                    if b[j] == b'.' {
                        // A second dot ends the number (e.g. ranges) —
                        // not expected in this dialect, treat as float end.
                        if is_float {
                            break;
                        }
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &sql[i..j];
                if is_float {
                    match text.parse::<f64>() {
                        Ok(f) => out.push((Token::Float(f), start)),
                        Err(_) => return err(format!("bad number {text:?}"), start),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => out.push((Token::Int(v), start)),
                        Err(_) => return err(format!("bad number {text:?}"), start),
                    }
                }
                i = j;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.push((Token::Ident(sql[i..j].to_ascii_lowercase()), start));
                i = j;
            }
            b'=' => {
                out.push((Token::Eq, start));
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push((Token::Ne, start));
                i += 2;
            }
            b'<' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push((Token::Le, start));
                    i += 2;
                }
                Some(b'>') => {
                    out.push((Token::Ne, start));
                    i += 2;
                }
                _ => {
                    out.push((Token::Lt, start));
                    i += 1;
                }
            },
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ge, start));
                    i += 2;
                } else {
                    out.push((Token::Gt, start));
                    i += 1;
                }
            }
            b'+' => {
                out.push((Token::Plus, start));
                i += 1;
            }
            b'-' => {
                out.push((Token::Minus, start));
                i += 1;
            }
            b'*' => {
                out.push((Token::Star, start));
                i += 1;
            }
            b'/' => {
                out.push((Token::Slash, start));
                i += 1;
            }
            b'(' => {
                out.push((Token::LParen, start));
                i += 1;
            }
            b')' => {
                out.push((Token::RParen, start));
                i += 1;
            }
            b',' => {
                out.push((Token::Comma, start));
                i += 1;
            }
            b'.' => {
                out.push((Token::Dot, start));
                i += 1;
            }
            b';' => {
                i += 1; // trailing semicolons are harmless
            }
            other => return err(format!("unexpected character {:?}", other as char), start),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("-> ->> :: = != <> <= >= < >"),
            vec![
                Token::Arrow,
                Token::ArrowText,
                Token::Cast,
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt
            ]
        );
    }

    #[test]
    fn idents_lowercased_strings_preserved() {
        assert_eq!(
            toks("SELECT Data->>'MixedCase'"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("data".into()),
                Token::ArrowText,
                Token::Str("MixedCase".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 1.5 0.07"),
            vec![Token::Int(42), Token::Float(1.5), Token::Float(0.07)]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert_eq!(toks("'héllo'"), vec![Token::Str("héllo".into())]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("SELECT -- the answer\n 42"),
            vec![Token::Ident("select".into()), Token::Int(42)]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            toks("a - b -> 'k'"),
            vec![
                Token::Ident("a".into()),
                Token::Minus,
                Token::Ident("b".into()),
                Token::Arrow,
                Token::Str("k".into())
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let e = tokenize("select 'open").unwrap_err();
        assert_eq!(e.offset, 7);
        let e = tokenize("select #").unwrap_err();
        assert_eq!(e.offset, 7);
    }
}
