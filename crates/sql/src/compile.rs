//! Compile parsed SELECTs to logical plans.
//!
//! The AST maps structurally to a [`LogicalPlan`]: `->`/`->>` chains
//! become scan access placeholders (§4.2), `::` casts select the typed
//! access (§4.3), equality predicates between two tables' accesses become
//! join clauses, and everything else in WHERE lands in one filter above
//! the join region. The rewrite passes ([`jt_query::Pass`]) then push
//! single-table conjuncts into the scans, prune unused accesses, reorder
//! joins by the cost model, and propagate LIMIT bounds — [`compile`] runs
//! the default pipeline; front ends that need pass control or EXPLAIN
//! reporting use [`plan`] + [`jt_query::plan_and_lower`].

use crate::ast::*;
use crate::{err, SqlError};
use jt_core::{AccessType, KeyPath, Relation};
use jt_query::{Agg, Expr, LogicalBuilder, LogicalPlan, PlannerOptions, Query, Scalar};
use std::collections::HashMap;

/// Table name → relation mapping.
pub type Catalog<'a> = HashMap<&'a str, &'a Relation>;

/// One collected access placeholder.
#[derive(Debug, Clone, PartialEq)]
struct CollectedAccess {
    table: usize,
    path: KeyPath,
    ty: AccessType,
    name: String,
}

struct Ctx<'s> {
    stmt: &'s SelectStmt,
    accesses: Vec<CollectedAccess>,
}

impl<'s> Ctx<'s> {
    fn table_index(&self, alias: &Option<String>, offset: usize) -> Result<usize, SqlError> {
        match alias {
            Some(a) => self
                .stmt
                .from
                .iter()
                .position(|t| &t.alias == a)
                .ok_or(SqlError {
                    message: format!("unknown table alias {a:?}"),
                    offset,
                }),
            None => {
                if self.stmt.from.len() == 1 {
                    Ok(0)
                } else {
                    err("unqualified access with multiple tables", offset)
                }
            }
        }
    }

    /// Register (or find) an access; returns its slot name.
    fn intern_access(
        &mut self,
        table: &Option<String>,
        path: &[PathStep],
        as_text: bool,
        cast: Option<SqlType>,
    ) -> Result<String, SqlError> {
        let ti = self.table_index(table, 0)?;
        let ty = match cast {
            Some(SqlType::Int) => AccessType::Int,
            Some(SqlType::Float) => AccessType::Float,
            Some(SqlType::Numeric) => AccessType::Numeric,
            Some(SqlType::Text) => AccessType::Text,
            Some(SqlType::Timestamp) => AccessType::Timestamp,
            Some(SqlType::Bool) => AccessType::Bool,
            None if as_text => AccessType::Text,
            None => AccessType::Json,
        };
        let mut kp = KeyPath::root();
        for step in path {
            kp = match step {
                PathStep::Key(k) => kp.child(k),
                PathStep::Index(i) => {
                    if *i < 0 {
                        return err("negative array index", 0);
                    }
                    kp.index(*i as u32)
                }
            };
        }
        if let Some(existing) = self
            .accesses
            .iter()
            .find(|a| a.table == ti && a.path == kp && a.ty == ty)
        {
            return Ok(existing.name.clone());
        }
        let name = format!("{}#{}#{:?}", self.stmt.from[ti].alias, kp, ty);
        self.accesses.push(CollectedAccess {
            table: ti,
            path: kp,
            ty,
            name: name.clone(),
        });
        Ok(name)
    }

    /// Convert a scalar (non-aggregate) SQL expression to an engine
    /// expression, interning accesses along the way.
    #[allow(clippy::wrong_self_convention)]
    fn to_expr(&mut self, e: &SqlExpr) -> Result<Expr, SqlError> {
        Ok(match e {
            SqlExpr::Access {
                table,
                path,
                as_text,
                cast,
            } => jt_query::col(&self.intern_access(table, path, *as_text, *cast)?),
            SqlExpr::Lit(l) => lit_expr(l),
            SqlExpr::Ref(name) => {
                return err(
                    format!("alias reference {name:?} is only valid in GROUP/ORDER BY"),
                    0,
                )
            }
            SqlExpr::Bin(a, op, b) => {
                let (a, b) = (self.to_expr(a)?, self.to_expr(b)?);
                match op {
                    BinOp::Eq => a.eq(b),
                    BinOp::Ne => a.ne(b),
                    BinOp::Lt => a.lt(b),
                    BinOp::Le => a.le(b),
                    BinOp::Gt => a.gt(b),
                    BinOp::Ge => a.ge(b),
                    BinOp::And => a.and(b),
                    BinOp::Or => a.or(b),
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    BinOp::Div => a.div(b),
                }
            }
            SqlExpr::Not(a) => self.to_expr(a)?.not(),
            SqlExpr::IsNull(a, negated) => {
                let inner = self.to_expr(a)?;
                if *negated {
                    inner.is_not_null()
                } else {
                    inner.is_null()
                }
            }
            SqlExpr::Like(a, pattern) => {
                let inner = self.to_expr(a)?;
                like_expr(inner, pattern)?
            }
            SqlExpr::InList(a, lits) => {
                let inner = self.to_expr(a)?;
                inner.in_list(lits.iter().map(lit_scalar).collect())
            }
            SqlExpr::ExtractYear(a) => self.to_expr(a)?.year(),
            SqlExpr::Agg { .. } => {
                return err("aggregate in a scalar context", 0);
            }
        })
    }
}

fn lit_scalar(l: &Lit) -> Scalar {
    match l {
        Lit::Int(i) => Scalar::Int(*i),
        Lit::Float(f) => Scalar::Float(*f),
        Lit::Str(s) => Scalar::str(s),
        Lit::Date(ts) => Scalar::Timestamp(*ts),
        Lit::Bool(b) => Scalar::Bool(*b),
        Lit::Null => Scalar::Null,
    }
}

fn lit_expr(l: &Lit) -> Expr {
    Expr::Const(lit_scalar(l))
}

/// Translate a LIKE pattern: `%x%` → contains, `x%` → prefix, no wildcard
/// → equality. Other shapes are rejected.
fn like_expr(inner: Expr, pattern: &str) -> Result<Expr, SqlError> {
    let has_inner_pct = pattern
        .trim_start_matches('%')
        .trim_end_matches('%')
        .contains('%');
    if has_inner_pct {
        return err(format!("unsupported LIKE pattern {pattern:?}"), 0);
    }
    Ok(match (pattern.starts_with('%'), pattern.ends_with('%')) {
        (true, true) => inner.contains(pattern.trim_matches('%')),
        (false, true) => inner.starts_with(pattern.trim_end_matches('%')),
        (true, false) => inner.ends_with(pattern.trim_start_matches('%')),
        (false, false) => inner.eq(jt_query::lit_str(pattern)),
    })
}

/// Flatten top-level AND conjuncts.
fn conjuncts(e: &SqlExpr) -> Vec<&SqlExpr> {
    match e {
        SqlExpr::Bin(a, BinOp::And, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other],
    }
}

/// Resolve GROUP BY entries: ordinals and aliases point into the select
/// list; everything else stays as-is.
fn resolve_item_ref<'s>(e: &'s SqlExpr, stmt: &'s SelectStmt) -> Result<&'s SqlExpr, SqlError> {
    match e {
        SqlExpr::Lit(Lit::Int(n)) => {
            let idx = *n as usize;
            if idx == 0 || idx > stmt.items.len() {
                return err(format!("ordinal {n} out of range"), 0);
            }
            Ok(&stmt.items[idx - 1].expr)
        }
        SqlExpr::Ref(name) => stmt
            .items
            .iter()
            .find(|it| it.alias.as_deref() == Some(name))
            .map(|it| &it.expr)
            .ok_or(SqlError {
                message: format!("unknown alias {name:?}"),
                offset: 0,
            }),
        other => Ok(other),
    }
}

/// Compile a parsed statement to an executable physical plan: [`plan`]
/// followed by the full default rewrite pipeline and lowering.
pub fn compile<'a>(stmt: &SelectStmt, catalog: &Catalog<'a>) -> Result<Query<'a>, SqlError> {
    Ok(jt_query::optimize(plan(stmt, catalog)?, &PlannerOptions::default()).lower())
}

/// Compile a parsed statement to its canonical [`LogicalPlan`] — the
/// declaration-order, rewrite-free tree the planner passes start from.
pub fn plan<'a>(stmt: &SelectStmt, catalog: &Catalog<'a>) -> Result<LogicalPlan<'a>, SqlError> {
    if stmt.items.is_empty() {
        return err("empty select list", 0);
    }
    let mut ctx = Ctx {
        stmt,
        accesses: Vec::new(),
    };

    // --- classify WHERE conjuncts --------------------------------------
    // Cross-table equalities become join clauses; every other conjunct
    // goes into one filter above the join region, where the
    // predicate-pushdown pass sinks single-table conjuncts into scans.
    let mut join_conds: Vec<(String, String)> = Vec::new();
    let mut post_filters: Vec<Expr> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        for c in conjuncts(w) {
            // Join predicate: access = access across two tables.
            if let SqlExpr::Bin(a, BinOp::Eq, b) = c {
                if let (
                    SqlExpr::Access {
                        table: ta,
                        path: pa,
                        as_text: xa,
                        cast: ca,
                    },
                    SqlExpr::Access {
                        table: tb,
                        path: pb,
                        as_text: xb,
                        cast: cb,
                    },
                ) = (a.as_ref(), b.as_ref())
                {
                    let ia = ctx.table_index(ta, 0)?;
                    let ib = ctx.table_index(tb, 0)?;
                    if ia != ib {
                        let na = ctx.intern_access(ta, pa, *xa, *ca)?;
                        let nb = ctx.intern_access(tb, pb, *xb, *cb)?;
                        join_conds.push((na, nb));
                        continue;
                    }
                }
            }
            post_filters.push(ctx.to_expr(c)?);
        }
    }

    // --- aggregation plan ----------------------------------------------
    let has_group = !stmt.group_by.is_empty();
    let has_agg = stmt.items.iter().any(|it| it.expr.has_aggregate())
        || stmt.having.as_ref().is_some_and(|h| h.has_aggregate());
    let mut group_keys: Vec<Expr> = Vec::new();
    let mut group_key_sql: Vec<&SqlExpr> = Vec::new();
    let mut aggs: Vec<Agg> = Vec::new();
    let mut agg_sql: Vec<&SqlExpr> = Vec::new();
    let mut select_slots: Vec<Expr> = Vec::new();
    let mut having_expr: Option<Expr> = None;

    if has_group || has_agg {
        for g in &stmt.group_by {
            let resolved = resolve_item_ref(g, stmt)?;
            group_key_sql.push(resolved);
            group_keys.push(ctx.to_expr(resolved)?);
        }
        // Helper to register an aggregate call.
        let add_agg = |ctx: &mut Ctx<'_>,
                       e: &'_ SqlExpr,
                       aggs: &mut Vec<Agg>,
                       agg_sql: &mut Vec<&SqlExpr>|
         -> Result<usize, SqlError> {
            // NOTE: agg_sql stores pointers for dedup by structural
            // equality; lifetimes tie to `stmt`.
            let found = agg_sql.iter().position(|x| *x == e);
            if let Some(i) = found {
                return Ok(i);
            }
            let SqlExpr::Agg {
                func,
                arg,
                distinct,
            } = e
            else {
                return err("expected aggregate", 0);
            };
            let agg = match (func, distinct) {
                (AggFunc::Count, true) => {
                    Agg::count_distinct(ctx.to_expr(arg.as_ref().expect("distinct arg"))?)
                }
                (AggFunc::Count, false) => match arg {
                    None => Agg::count_star(),
                    Some(a) => Agg::count(ctx.to_expr(a)?),
                },
                (AggFunc::Sum, _) => Agg::sum(ctx.to_expr(arg.as_ref().expect("sum arg"))?),
                (AggFunc::Avg, _) => Agg::avg(ctx.to_expr(arg.as_ref().expect("avg arg"))?),
                (AggFunc::Min, _) => Agg::min(ctx.to_expr(arg.as_ref().expect("min arg"))?),
                (AggFunc::Max, _) => Agg::max(ctx.to_expr(arg.as_ref().expect("max arg"))?),
            };
            aggs.push(agg);
            Ok(aggs.len() - 1)
        };
        // Select items: group keys or aggregates.
        fn find_key(key_sql: &[&SqlExpr], e: &SqlExpr) -> Option<usize> {
            key_sql.iter().position(|k| *k == e)
        }
        let stmt_items: Vec<&SqlExpr> = stmt.items.iter().map(|it| &it.expr).collect();
        for e in &stmt_items {
            if let Some(k) = find_key(&group_key_sql, e) {
                select_slots.push(Expr::Slot(k));
            } else if matches!(e, SqlExpr::Agg { .. }) {
                let idx = add_agg(&mut ctx, e, &mut aggs, &mut agg_sql)?;
                agg_sql.push(e);
                // keep agg_sql aligned: add_agg doesn't push
                agg_sql.truncate(aggs.len());
                select_slots.push(Expr::Slot(group_keys.len() + idx));
            } else {
                return err("select item must be a group key or an aggregate", 0);
            }
        }
        // HAVING: aggregates and key refs become output slots.
        if let Some(h) = &stmt.having {
            having_expr = Some(compile_slot_expr(
                h,
                &mut ctx,
                &group_key_sql,
                &mut aggs,
                &mut agg_sql,
                stmt,
            )?);
        }
    } else {
        for it in &stmt.items {
            let e = ctx.to_expr(&it.expr)?;
            select_slots.push(e);
        }
        if stmt.having.is_some() {
            return err("HAVING without aggregation", 0);
        }
    }

    // --- ORDER BY resolution (against the final output columns) --------
    // Ordinals and aliases point into the select list; select-item
    // expressions match structurally. Any other expression is appended as
    // a *hidden* sort slot: it participates in the sort and is dropped
    // from the visible output afterwards.
    let visible_items = stmt.items.len();
    let mut order: Vec<(usize, bool)> = Vec::new();
    for (e, desc) in &stmt.order_by {
        let idx = match e {
            SqlExpr::Lit(Lit::Int(n)) => {
                let i = *n as usize;
                if i == 0 || i > stmt.items.len() {
                    return err(format!("ORDER BY ordinal {n} out of range"), 0);
                }
                i - 1
            }
            SqlExpr::Ref(name) => stmt
                .items
                .iter()
                .position(|it| it.alias.as_deref() == Some(name))
                .ok_or(SqlError {
                    message: format!("unknown ORDER BY alias {name:?}"),
                    offset: 0,
                })?,
            other => match stmt.items.iter().position(|it| &it.expr == other) {
                Some(i) => i,
                None => {
                    let compiled = if has_group || has_agg {
                        compile_slot_expr(
                            other,
                            &mut ctx,
                            &group_key_sql,
                            &mut aggs,
                            &mut agg_sql,
                            stmt,
                        )?
                    } else {
                        ctx.to_expr(other)?
                    };
                    select_slots.push(compiled);
                    select_slots.len() - 1
                }
            },
        };
        order.push((idx, *desc));
    }

    // --- assemble the logical plan --------------------------------------
    let mut b: Option<LogicalBuilder<'a>> = None;
    for (ti, t) in stmt.from.iter().enumerate() {
        let rel = *catalog.get(t.name.as_str()).ok_or(SqlError {
            message: format!("unknown table {:?}", t.name),
            offset: 0,
        })?;
        let mut cur = match b.take() {
            None => LogicalPlan::scan(&t.alias, rel),
            Some(prev) => prev.join(&t.alias, rel),
        };
        for a in ctx.accesses.iter().filter(|a| a.table == ti) {
            cur = cur.access_path(&a.name, a.path.clone(), a.ty);
        }
        b = Some(cur);
    }
    let mut b = b.expect("at least one table");
    for (l, r) in join_conds {
        b = b.on(&l, &r);
    }
    for f in post_filters {
        b = b.filter_joined(f);
    }
    if has_group || has_agg {
        b = b.aggregate(group_keys, aggs);
        if let Some(h) = having_expr {
            b = b.having(h);
        }
    }
    b = if select_slots.len() > visible_items {
        b.select_visible(select_slots, visible_items)
    } else {
        b.select(select_slots)
    };
    for (idx, desc) in order {
        b = b.order_by(idx, desc);
    }
    if let Some(n) = stmt.limit {
        b = b.limit(n);
    }
    if let Some(n) = stmt.offset {
        b = b.offset(n);
    }
    Ok(b.build())
}

/// Compile an expression in aggregate-output context (HAVING, or a hidden
/// ORDER BY sort slot): aggregate calls map to aggregate output slots
/// (added if not already selected), group-key aliases/ordinals/expressions
/// to key slots.
fn compile_slot_expr<'s>(
    h: &'s SqlExpr,
    ctx: &mut Ctx<'s>,
    group_key_sql: &[&'s SqlExpr],
    aggs: &mut Vec<Agg>,
    agg_sql: &mut Vec<&'s SqlExpr>,
    stmt: &'s SelectStmt,
) -> Result<Expr, SqlError> {
    Ok(match h {
        SqlExpr::Agg {
            func,
            arg,
            distinct,
        } => {
            if let Some(i) = agg_sql.iter().position(|x| *x == h) {
                return Ok(Expr::Slot(group_key_sql.len() + i));
            }
            let agg = match (func, distinct) {
                (AggFunc::Count, true) => {
                    Agg::count_distinct(ctx.to_expr(arg.as_ref().expect("arg"))?)
                }
                (AggFunc::Count, false) => match arg {
                    None => Agg::count_star(),
                    Some(a) => Agg::count(ctx.to_expr(a)?),
                },
                (AggFunc::Sum, _) => Agg::sum(ctx.to_expr(arg.as_ref().expect("arg"))?),
                (AggFunc::Avg, _) => Agg::avg(ctx.to_expr(arg.as_ref().expect("arg"))?),
                (AggFunc::Min, _) => Agg::min(ctx.to_expr(arg.as_ref().expect("arg"))?),
                (AggFunc::Max, _) => Agg::max(ctx.to_expr(arg.as_ref().expect("arg"))?),
            };
            aggs.push(agg);
            agg_sql.push(h);
            Expr::Slot(group_key_sql.len() + aggs.len() - 1)
        }
        SqlExpr::Ref(_) | SqlExpr::Lit(Lit::Int(_)) => {
            // Alias or ordinal: try select-item resolution first.
            if let Ok(resolved) = resolve_item_ref(h, stmt) {
                if let Some(k) = group_key_sql.iter().position(|x| *x == resolved) {
                    return Ok(Expr::Slot(k));
                }
                // An alias for a non-key select item (e.g. `total` for
                // `SUM(...) AS total`): compile what it names. Aliases
                // resolve to select-list expressions, so this cannot
                // loop unless the item aliases itself — guard that.
                if resolved != h {
                    return compile_slot_expr(resolved, ctx, group_key_sql, aggs, agg_sql, stmt);
                }
            }
            match h {
                SqlExpr::Lit(l) => lit_expr(l),
                _ => return err("alias must name a select item or group key", 0),
            }
        }
        SqlExpr::Lit(l) => lit_expr(l),
        SqlExpr::Bin(a, op, b) => {
            let a = compile_slot_expr(a, ctx, group_key_sql, aggs, agg_sql, stmt)?;
            let b = compile_slot_expr(b, ctx, group_key_sql, aggs, agg_sql, stmt)?;
            match op {
                BinOp::Eq => a.eq(b),
                BinOp::Ne => a.ne(b),
                BinOp::Lt => a.lt(b),
                BinOp::Le => a.le(b),
                BinOp::Gt => a.gt(b),
                BinOp::Ge => a.ge(b),
                BinOp::And => a.and(b),
                BinOp::Or => a.or(b),
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::Div => a.div(b),
            }
        }
        SqlExpr::Not(a) => compile_slot_expr(a, ctx, group_key_sql, aggs, agg_sql, stmt)?.not(),
        other => {
            // Group-key expressions may appear verbatim.
            if let Some(k) = group_key_sql.iter().position(|x| *x == other) {
                Expr::Slot(k)
            } else {
                return err("unsupported HAVING expression", 0);
            }
        }
    })
}
