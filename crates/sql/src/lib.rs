//! # jt-sql — SQL front end for JSON tiles
//!
//! The paper phrases every query in PostgreSQL-style SQL with the JSON
//! access operators `->` and `->>` and explicit casts (§4.1, Figure 5):
//!
//! ```sql
//! SELECT c.data->>'c_custkey'::BIGINT,
//!        SUM(l.data->>'l_extendedprice'::DECIMAL *
//!            (1 - l.data->>'l_discount'::DECIMAL))
//! FROM customer c, orders o, lineitem l
//! WHERE l.data->>'l_orderkey'::BIGINT = o.data->>'o_orderkey'::BIGINT
//!   AND o.data->>'o_custkey'::BIGINT  = c.data->>'c_custkey'::BIGINT
//! GROUP BY 1
//! ```
//!
//! This crate parses that dialect and compiles it to `jt-query` plans,
//! performing the paper's plan rewrites in the process:
//!
//! * **access push-down** (§4.2): every `->`/`->>` chain becomes a scan
//!   placeholder on its table;
//! * **cast rewriting** (§4.3): `->> k :: BIGINT` compiles to a typed
//!   integer access instead of text + re-parse;
//! * single-table `WHERE` conjuncts are pushed into the scans, join
//!   equalities become hash-join conditions, everything else evaluates
//!   after the joins.
//!
//! ```
//! use jt_core::{Relation, TilesConfig};
//! let docs: Vec<_> = (0..100)
//!     .map(|i| jt_json::parse(&format!(r#"{{"v": {i}}}"#)).unwrap())
//!     .collect();
//! let rel = Relation::load(&docs, TilesConfig::default());
//! let result = jt_sql::query(
//!     "SELECT SUM(data->>'v'::INT) FROM t WHERE data->>'v'::INT < 10",
//!     &[("t", &rel)],
//! ).unwrap();
//! assert_eq!(result.column(0)[0].as_i64(), Some(45));
//! ```

mod ast;
mod compile;
mod lexer;
mod parser;

pub use ast::{ExplainMode, SelectStmt, SqlExpr, SqlType, Statement};
pub use compile::{compile, plan, Catalog};
pub use lexer::{tokenize, Token};
pub use parser::{parse_select, parse_statement};

use jt_core::Relation;
use jt_query::{ExecOptions, ResultSet};

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the SQL text (best effort).
    pub offset: usize,
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for SqlError {}

pub(crate) fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, SqlError> {
    Err(SqlError {
        message: message.into(),
        offset,
    })
}

/// Parse, compile, and execute a `SELECT` against the named relations.
pub fn query(sql: &str, tables: &[(&str, &Relation)]) -> Result<ResultSet, SqlError> {
    query_with(sql, tables, ExecOptions::default())
}

/// Like [`query`] with explicit execution options. The logical rewrite
/// pipeline runs with [`jt_query::PlannerOptions::compat`], so
/// `opts.optimize_joins = false` keeps pushdown and bound propagation but
/// executes joins in declaration order.
pub fn query_with(
    sql: &str,
    tables: &[(&str, &Relation)],
    opts: ExecOptions,
) -> Result<ResultSet, SqlError> {
    let stmt = parse_select(sql)?;
    let catalog: Catalog<'_> = tables.iter().copied().collect();
    let lp = plan(&stmt, &catalog)?;
    let popts = jt_query::PlannerOptions::compat(opts.optimize_joins);
    Ok(jt_query::optimize(lp, &popts)
        .lower()
        .run_with(opts.clone()))
}

/// The output of [`execute`], depending on the statement's `EXPLAIN` prefix.
#[derive(Debug, Clone)]
pub enum SqlOutput {
    /// A plain `SELECT`: the executed result.
    Rows(ResultSet),
    /// `EXPLAIN`: the plan description; nothing was executed.
    Plan(String),
    /// `EXPLAIN ANALYZE`: the rendered per-operator profile plus the
    /// executed result it describes.
    Analyze {
        /// `ExecProfile::render()` output — what the CLI prints.
        rendered: String,
        /// The executed result (rows and counters).
        result: ResultSet,
    },
}

/// Parse and run a statement, honoring an `EXPLAIN [ANALYZE]` prefix:
/// plain `SELECT`s execute, `EXPLAIN` returns the plan text without
/// executing, `EXPLAIN ANALYZE` executes and returns the per-operator
/// profile alongside the rows.
pub fn execute(
    sql: &str,
    tables: &[(&str, &Relation)],
    opts: ExecOptions,
) -> Result<SqlOutput, SqlError> {
    try_execute(sql, tables, opts).map_err(|e| match e {
        ExecuteError::Sql(err) => err,
        // `execute` callers pass an inert token, so an abort is a logic
        // error — keep the old panic-free contract by converting it.
        ExecuteError::Aborted(err) => SqlError {
            message: err.to_string(),
            offset: 0,
        },
    })
}

/// Error from [`try_execute`]: a parse/compile failure or an execution
/// abort (cooperative cancellation / deadline via
/// [`jt_query::CancelToken`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecuteError {
    /// The statement failed to parse or compile.
    Sql(SqlError),
    /// Execution started but was aborted before completion.
    Aborted(jt_query::ExecError),
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::Sql(e) => write!(f, "{e}"),
            ExecuteError::Aborted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecuteError {}

impl From<SqlError> for ExecuteError {
    fn from(e: SqlError) -> Self {
        ExecuteError::Sql(e)
    }
}

/// Like [`execute`] but surfaces execution aborts as `Err` instead of
/// panicking, which makes it the entry point for services that attach a
/// live [`jt_query::CancelToken`] to `opts.cancel` (deadlines, client
/// disconnects).
pub fn try_execute(
    sql: &str,
    tables: &[(&str, &Relation)],
    opts: ExecOptions,
) -> Result<SqlOutput, ExecuteError> {
    try_execute_traced(sql, tables, opts, &mut SqlTiming::default())
}

/// Phase timings of one [`try_execute_traced`] call, filled as far as the
/// statement got — including on error (a parse failure still reports its
/// `plan` time, an aborted execution its `execute` time so far).
#[derive(Debug, Clone, Default)]
pub struct SqlTiming {
    /// Parse + logical plan + rewrite passes + lowering.
    pub plan: std::time::Duration,
    /// Per-rewrite-pass wall times, in pass order.
    pub passes: Vec<jt_query::PassTiming>,
    /// Physical execution (zero for plain `EXPLAIN`).
    pub execute: std::time::Duration,
}

/// Like [`try_execute`], also reporting phase timings through `timing` —
/// the entry point for the query service, which records planning and
/// execution time (and per-pass planner detail) into every query trace.
pub fn try_execute_traced(
    sql: &str,
    tables: &[(&str, &Relation)],
    opts: ExecOptions,
    timing: &mut SqlTiming,
) -> Result<SqlOutput, ExecuteError> {
    let t0 = std::time::Instant::now();
    let parsed = parse_statement(sql).and_then(|stmt| {
        let catalog: Catalog<'_> = tables.iter().copied().collect();
        plan(&stmt.select, &catalog).map(|lp| (stmt, lp))
    });
    let (stmt, lp) = match parsed {
        Ok(x) => x,
        Err(e) => {
            timing.plan = t0.elapsed();
            return Err(e.into());
        }
    };
    let popts = jt_query::PlannerOptions::compat(opts.optimize_joins);
    match stmt.explain {
        ExplainMode::None => {
            let (optimized, passes) = jt_query::optimize_timed(lp, &popts);
            let physical = optimized.lower();
            timing.passes = passes;
            timing.plan = t0.elapsed();
            let t1 = std::time::Instant::now();
            let result = physical.try_run_with(opts.clone());
            timing.execute = t1.elapsed();
            Ok(SqlOutput::Rows(result.map_err(ExecuteError::Aborted)?))
        }
        ExplainMode::Plan => {
            // Logical tree, per-pass before/after deltas, then the
            // physical plan with its cardinality estimates.
            let planned = jt_query::plan_and_lower(lp, &popts);
            timing.passes = planned
                .reports
                .iter()
                .map(|r| jt_query::PassTiming {
                    name: r.name,
                    wall: r.wall,
                })
                .collect();
            timing.plan = t0.elapsed();
            Ok(SqlOutput::Plan(jt_query::explain_text(&planned)))
        }
        ExplainMode::Analyze => {
            let (optimized, passes) = jt_query::optimize_timed(lp, &popts);
            let physical = optimized.lower();
            timing.passes = passes;
            timing.plan = t0.elapsed();
            let t1 = std::time::Instant::now();
            let result = physical.try_run_with(opts.clone());
            timing.execute = t1.elapsed();
            let result = result.map_err(ExecuteError::Aborted)?;
            Ok(SqlOutput::Analyze {
                rendered: result.profile.render(),
                result,
            })
        }
    }
}
