//! Recursive-descent parser for the SELECT dialect.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use crate::{err, SqlError};

/// Parse a single `SELECT` statement (no `EXPLAIN` prefix allowed).
pub fn parse_select(sql: &str) -> Result<SelectStmt, SqlError> {
    let stmt = parse_statement(sql)?;
    match stmt.explain {
        ExplainMode::None => Ok(stmt.select),
        _ => err("EXPLAIN is not valid here; use parse_statement", 0),
    }
}

/// Parse a statement: `SELECT …`, `EXPLAIN SELECT …`, or
/// `EXPLAIN ANALYZE SELECT …`.
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let explain = if p.eat_kw("explain") {
        if p.eat_kw("analyze") {
            ExplainMode::Analyze
        } else {
            ExplainMode::Plan
        }
    } else {
        ExplainMode::None
    };
    p.expect_kw("select")?;
    let select = p.select_body()?;
    if p.pos != p.tokens.len() {
        return err("trailing tokens after statement", p.offset());
    }
    Ok(Statement { explain, select })
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |(_, o)| *o)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            err(format!("expected {}", kw.to_uppercase()), self.offset())
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), SqlError> {
        if self.eat(t) {
            Ok(())
        } else {
            err(format!("expected {what}"), self.offset())
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                err("expected identifier", self.offset())
            }
        }
    }

    fn select_body(&mut self) -> Result<SelectStmt, SqlError> {
        // SELECT list.
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("as") {
                Some(self.ident()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        // FROM.
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            let name = self.ident()?;
            // Optional alias (an identifier that is not a clause keyword).
            let alias = match self.peek() {
                Some(Token::Ident(s))
                    if !matches!(
                        s.as_str(),
                        "where" | "group" | "having" | "order" | "limit" | "offset" | "on" | "join"
                    ) =>
                {
                    self.ident()?
                }
                _ => name.clone(),
            };
            from.push(TableRef { name, alias });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        // WHERE.
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        // GROUP BY.
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        // HAVING.
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        // ORDER BY.
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        // LIMIT / OFFSET (either may appear alone; LIMIT first when both).
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return err("expected LIMIT count", self.offset()),
            }
        } else {
            None
        };
        let offset = if self.eat_kw("offset") {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return err("expected OFFSET count", self.offset()),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    // Precedence: OR < AND < NOT < comparison/IS/LIKE/IN < +- < */ < unary < postfix.
    fn expr(&mut self) -> Result<SqlExpr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Bin(Box::new(lhs), BinOp::Or, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = SqlExpr::Bin(Box::new(lhs), BinOp::And, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, SqlError> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(SqlExpr::Not(Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::IsNull(Box::new(lhs), negated));
        }
        // [NOT] LIKE / [NOT] IN
        let negated = self.peek_kw("not") && {
            // lookahead for LIKE/IN after NOT
            matches!(
                self.tokens.get(self.pos + 1).map(|(t, _)| t),
                Some(Token::Ident(s)) if s == "like" || s == "in"
            )
        };
        if negated {
            self.pos += 1;
        }
        if self.eat_kw("like") {
            let pat = match self.bump() {
                Some(Token::Str(s)) => s,
                _ => return err("expected LIKE pattern string", self.offset()),
            };
            let e = SqlExpr::Like(Box::new(lhs), pat);
            return Ok(if negated {
                SqlExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        if self.eat_kw("in") {
            self.expect(&Token::LParen, "(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, ")")?;
            let e = SqlExpr::InList(Box::new(lhs), list);
            return Ok(if negated {
                SqlExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        if negated {
            return err("expected LIKE or IN after NOT", self.offset());
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(SqlExpr::Bin(Box::new(lhs), op, Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = SqlExpr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = SqlExpr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<SqlExpr, SqlError> {
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            return Ok(SqlExpr::Bin(
                Box::new(SqlExpr::Lit(Lit::Int(0))),
                BinOp::Sub,
                Box::new(inner),
            ));
        }
        self.postfix_expr()
    }

    /// Primary expression followed by `->`/`->>` chains and `::` casts.
    fn postfix_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut e = self.primary()?;
        loop {
            let as_text = match self.peek() {
                Some(Token::Arrow) => false,
                Some(Token::ArrowText) => true,
                Some(Token::Cast) => {
                    self.pos += 1;
                    let kw = self.ident()?;
                    let Some(ty) = SqlType::from_keyword(&kw) else {
                        return err(format!("unknown type {kw:?}"), self.offset());
                    };
                    match &mut e {
                        SqlExpr::Access { cast, .. } => *cast = Some(ty),
                        // Casting a non-access is a no-op for literals in
                        // this dialect (e.g. `DATE '…'` is handled in
                        // primary); reject everything else.
                        _ => return err("cast is only supported on JSON accesses", self.offset()),
                    }
                    continue;
                }
                _ => return Ok(e),
            };
            self.pos += 1;
            let step = match self.bump() {
                Some(Token::Str(k)) => PathStep::Key(k),
                Some(Token::Int(i)) => PathStep::Index(i),
                _ => return err("expected key string or index after ->", self.offset()),
            };
            match &mut e {
                SqlExpr::Access {
                    path,
                    as_text: at,
                    cast,
                    ..
                } => {
                    if cast.is_some() {
                        return err("access after cast", self.offset());
                    }
                    path.push(step);
                    *at = as_text;
                }
                _ => return err("-> applies to a JSON column", self.offset()),
            }
        }
    }

    fn literal(&mut self) -> Result<Lit, SqlError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Lit::Int(i)),
            Some(Token::Float(f)) => Ok(Lit::Float(f)),
            Some(Token::Str(s)) => Ok(Lit::Str(s)),
            Some(Token::Ident(kw)) if kw == "true" => Ok(Lit::Bool(true)),
            Some(Token::Ident(kw)) if kw == "false" => Ok(Lit::Bool(false)),
            Some(Token::Ident(kw)) if kw == "null" => Ok(Lit::Null),
            Some(Token::Ident(kw)) if kw == "date" || kw == "timestamp" => match self.bump() {
                Some(Token::Str(s)) => match jt_core::parse_timestamp(&s) {
                    Some(ts) => Ok(Lit::Date(ts)),
                    None => err(format!("bad date literal {s:?}"), self.offset()),
                },
                _ => err("expected string after DATE", self.offset()),
            },
            _ => {
                self.pos = self.pos.saturating_sub(1);
                err("expected literal", self.offset())
            }
        }
    }

    fn primary(&mut self) -> Result<SqlExpr, SqlError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen, ")")?;
                Ok(e)
            }
            Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                Ok(SqlExpr::Lit(self.literal()?))
            }
            Some(Token::Ident(kw)) => {
                match kw.as_str() {
                    "true" | "false" | "null" | "date" | "timestamp" => {
                        Ok(SqlExpr::Lit(self.literal()?))
                    }
                    "count" | "sum" | "avg" | "min" | "max" => self.aggregate(&kw),
                    "extract" => {
                        self.pos += 1;
                        self.expect(&Token::LParen, "(")?;
                        self.expect_kw("year")?;
                        self.expect_kw("from")?;
                        let e = self.expr()?;
                        self.expect(&Token::RParen, ")")?;
                        Ok(SqlExpr::ExtractYear(Box::new(e)))
                    }
                    _ => {
                        // Identifier: `alias.data`, `data`, a bare alias
                        // reference, or a table alias rooting an access.
                        self.pos += 1;
                        let mut table = None;
                        let mut base = kw;
                        if self.eat(&Token::Dot) {
                            table = Some(base);
                            base = self.ident()?;
                        }
                        // `x.data -> …` / `data -> …` / `x -> …` are access
                        // roots; a bare identifier is an alias/ordinal ref.
                        match self.peek() {
                            Some(Token::Arrow) | Some(Token::ArrowText) => {
                                if table.is_none() && base != "data" {
                                    // `alias->>'k'`: the identifier is the
                                    // table, the implicit column is data.
                                    table = Some(base);
                                }
                                Ok(SqlExpr::Access {
                                    table,
                                    path: Vec::new(),
                                    as_text: false,
                                    cast: None,
                                })
                            }
                            _ => {
                                if table.is_some() {
                                    return err(
                                        "qualified names must be JSON accesses",
                                        self.offset(),
                                    );
                                }
                                Ok(SqlExpr::Ref(base))
                            }
                        }
                    }
                }
            }
            Some(Token::Star) => {
                // Bare * only appears inside COUNT(*), handled there.
                err("unexpected *", self.offset())
            }
            _ => err("expected expression", self.offset()),
        }
    }

    fn aggregate(&mut self, func: &str) -> Result<SqlExpr, SqlError> {
        self.pos += 1;
        self.expect(&Token::LParen, "(")?;
        let func = match func {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => unreachable!("caller checked"),
        };
        if func == AggFunc::Count && self.eat(&Token::Star) {
            self.expect(&Token::RParen, ")")?;
            return Ok(SqlExpr::Agg {
                func,
                arg: None,
                distinct: false,
            });
        }
        let distinct = self.eat_kw("distinct");
        let arg = self.expr()?;
        self.expect(&Token::RParen, ")")?;
        if distinct && func != AggFunc::Count {
            return err("DISTINCT is only supported with COUNT", self.offset());
        }
        Ok(SqlExpr::Agg {
            func,
            arg: Some(Box::new(arg)),
            distinct,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let s = parse_select("SELECT data->>'x' FROM t").unwrap();
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].alias, "t");
        assert_eq!(
            s.items[0].expr,
            SqlExpr::Access {
                table: None,
                path: vec![PathStep::Key("x".into())],
                as_text: true,
                cast: None
            }
        );
    }

    #[test]
    fn qualified_access_with_cast() {
        let s = parse_select(
            "SELECT l.data->>'l_quantity'::INT FROM lineitem l WHERE l.data->'a'->>'b'::FLOAT > 1.5",
        )
        .unwrap();
        assert_eq!(s.from[0].alias, "l");
        match &s.items[0].expr {
            SqlExpr::Access {
                table,
                path,
                as_text,
                cast,
            } => {
                assert_eq!(table.as_deref(), Some("l"));
                assert_eq!(path, &vec![PathStep::Key("l_quantity".into())]);
                assert!(*as_text);
                assert_eq!(*cast, Some(SqlType::Int));
            }
            other => panic!("{other:?}"),
        }
        match s.where_clause.as_ref().unwrap() {
            SqlExpr::Bin(lhs, BinOp::Gt, _) => match lhs.as_ref() {
                SqlExpr::Access { path, cast, .. } => {
                    assert_eq!(path.len(), 2);
                    assert_eq!(*cast, Some(SqlType::Float));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_clause_set() {
        let s = parse_select(
            "SELECT data->>'g' AS g, COUNT(*), SUM(data->>'v'::INT) \
             FROM t WHERE data->>'v'::INT >= 0 AND data->>'g' LIKE '%x%' \
             GROUP BY g HAVING COUNT(*) > 2 ORDER BY 3 DESC, g LIMIT 7",
        )
        .unwrap();
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.items[0].alias.as_deref(), Some("g"));
        assert_eq!(s.group_by, vec![SqlExpr::Ref("g".into())]);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].1, "DESC");
        assert_eq!(s.limit, Some(7));
    }

    #[test]
    fn comma_joins_and_date_literals() {
        let s = parse_select(
            "SELECT COUNT(*) FROM orders o, lineitem l \
             WHERE o.data->>'k'::INT = l.data->>'k'::INT \
               AND o.data->>'d'::DATE < DATE '1995-03-15'",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        let w = s.where_clause.unwrap();
        assert!(matches!(w, SqlExpr::Bin(_, BinOp::And, _)));
    }

    #[test]
    fn aggregates() {
        let s =
            parse_select("SELECT COUNT(DISTINCT data->>'u'), MIN(data->>'v'::INT) FROM t").unwrap();
        match &s.items[0].expr {
            SqlExpr::Agg {
                func: AggFunc::Count,
                distinct: true,
                arg,
            } => assert!(arg.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_list_and_not() {
        let s = parse_select(
            "SELECT COUNT(*) FROM t WHERE data->>'m' IN ('A','B') AND data->>'x' NOT LIKE 'q%' AND NOT data->>'b'::BOOL",
        )
        .unwrap();
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn extract_year_and_arithmetic() {
        let s = parse_select(
            "SELECT EXTRACT(YEAR FROM data->>'d'::DATE), SUM(data->>'p'::DECIMAL * (1 - data->>'disc'::DECIMAL)) FROM t GROUP BY 1",
        )
        .unwrap();
        assert!(matches!(s.items[0].expr, SqlExpr::ExtractYear(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_select("SELECT").is_err());
        assert!(parse_select("SELECT 1").is_err(), "FROM required");
        assert!(parse_select("SELECT x FROM").is_err());
        assert!(parse_select("SELECT data->> FROM t").is_err());
        assert!(parse_select("SELECT data->>'x'::NOPE FROM t").is_err());
        // `FROM t extra` parses as an alias; genuinely trailing tokens fail.
        assert!(parse_select("SELECT 1 FROM t LIMIT 2 extra").is_err());
        assert!(parse_select("SELECT SUM(DISTINCT data->>'x') FROM t").is_err());
    }

    #[test]
    fn alias_rooted_access() {
        let s = parse_select("SELECT l->>'k' FROM lineitem l").unwrap();
        match &s.items[0].expr {
            SqlExpr::Access { table, .. } => assert_eq!(table.as_deref(), Some("l")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_index_access() {
        let s = parse_select("SELECT data->'tags'->0->>'text' FROM t").unwrap();
        match &s.items[0].expr {
            SqlExpr::Access { path, .. } => {
                assert_eq!(
                    path,
                    &vec![
                        PathStep::Key("tags".into()),
                        PathStep::Index(0),
                        PathStep::Key("text".into())
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }
}
