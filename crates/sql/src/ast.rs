//! Abstract syntax for the supported SELECT dialect.

/// SQL cast target types (§4.3 cast rewriting maps these to
/// [`jt_core::AccessType`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlType {
    /// `INT` / `INTEGER` / `BIGINT`
    Int,
    /// `FLOAT` / `DOUBLE` / `REAL`
    Float,
    /// `DECIMAL` / `NUMERIC`
    Numeric,
    /// `TEXT` / `VARCHAR`
    Text,
    /// `DATE` / `TIMESTAMP`
    Timestamp,
    /// `BOOL` / `BOOLEAN`
    Bool,
}

impl SqlType {
    /// Recognize a type keyword.
    pub fn from_keyword(kw: &str) -> Option<SqlType> {
        Some(match kw {
            "int" | "integer" | "bigint" | "smallint" => SqlType::Int,
            "float" | "double" | "real" => SqlType::Float,
            "decimal" | "numeric" => SqlType::Numeric,
            "text" | "varchar" => SqlType::Text,
            "date" | "timestamp" => SqlType::Timestamp,
            "bool" | "boolean" => SqlType::Bool,
            _ => return None,
        })
    }
}

/// Comparison / logic / arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// `DATE 'YYYY-MM-DD'` (pre-parsed to epoch seconds).
    Date(i64),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// `NULL`.
    Null,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

/// One step of a JSON access chain.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStep {
    /// `-> 'key'` / `->> 'key'`
    Key(String),
    /// `-> 2` / `->> 2` (array element)
    Index(i64),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// A JSON access chain: `table.data ->'a'-> 'b' ->> 'c' :: TYPE`.
    /// `as_text` records whether the final hop was `->>`.
    Access {
        /// Table alias the chain is rooted at (`None` = the only table).
        table: Option<String>,
        /// The key/index steps.
        path: Vec<PathStep>,
        /// Final hop was `->>` (text) rather than `->` (json).
        as_text: bool,
        /// Optional `::` cast.
        cast: Option<SqlType>,
    },
    /// Literal.
    Lit(Lit),
    /// Reference to a select-item alias or an output ordinal (in GROUP
    /// BY / ORDER BY / HAVING).
    Ref(String),
    /// Binary operation.
    Bin(Box<SqlExpr>, BinOp, Box<SqlExpr>),
    /// `NOT e`
    Not(Box<SqlExpr>),
    /// `e IS NULL` / `e IS NOT NULL` (bool = negated).
    IsNull(Box<SqlExpr>, bool),
    /// `e LIKE 'pattern'` (supports `%x%`, `x%`, exact).
    Like(Box<SqlExpr>, String),
    /// `e IN (lit, …)`
    InList(Box<SqlExpr>, Vec<Lit>),
    /// `EXTRACT(YEAR FROM e)`
    ExtractYear(Box<SqlExpr>),
    /// Aggregate call; `distinct` only valid with COUNT.
    Agg {
        /// Which function.
        func: AggFunc,
        /// `COUNT(*)` has no argument.
        arg: Option<Box<SqlExpr>>,
        /// `COUNT(DISTINCT …)`.
        distinct: bool,
    },
}

impl SqlExpr {
    /// True if the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            SqlExpr::Agg { .. } => true,
            SqlExpr::Bin(a, _, b) => a.has_aggregate() || b.has_aggregate(),
            SqlExpr::Not(a)
            | SqlExpr::IsNull(a, _)
            | SqlExpr::Like(a, _)
            | SqlExpr::InList(a, _)
            | SqlExpr::ExtractYear(a) => a.has_aggregate(),
            _ => false,
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: SqlExpr,
    /// `AS alias`.
    pub alias: Option<String>,
}

/// A table in FROM: `name [alias]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Catalog name.
    pub name: String,
    /// Alias (defaults to the name).
    pub alias: String,
}

/// `EXPLAIN` wrapper of a statement, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// Plain statement: execute and return rows.
    #[default]
    None,
    /// `EXPLAIN`: describe the plan without executing.
    Plan,
    /// `EXPLAIN ANALYZE`: execute, return rows plus the per-operator
    /// profile.
    Analyze,
}

/// A full parsed statement: the `SELECT` plus its `EXPLAIN` wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// `EXPLAIN` / `EXPLAIN ANALYZE` prefix, if present.
    pub explain: ExplainMode,
    /// The wrapped query.
    pub select: SelectStmt,
}

/// A parsed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM tables (comma joins; join predicates live in WHERE, the
    /// paper's Figure 5 style).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY expressions (aliases and 1-based ordinals allowed).
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate (may reference aliases/ordinals/aggregates).
    pub having: Option<SqlExpr>,
    /// ORDER BY (expression, descending).
    pub order_by: Vec<(SqlExpr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET (rows skipped before the limit applies).
    pub offset: Option<usize>,
}
