//! Property tests: LZ4 round trip over arbitrary and structured inputs.

use jt_compress::{compress, compress_prepend_size, decompress, decompress_size_prepended};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip_arbitrary(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn round_trip_low_entropy(data in prop::collection::vec(0u8..4, 0..4096)) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn round_trip_repeated_chunks(chunk in prop::collection::vec(any::<u8>(), 1..32), reps in 1usize..200) {
        let data: Vec<u8> = chunk.iter().copied().cycle().take(chunk.len() * reps).collect();
        let packed = compress_prepend_size(&data);
        prop_assert_eq!(decompress_size_prepended(&packed).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512), size in 0usize..2048) {
        let _ = decompress(&data, size);
    }
}
