//! Lightweight columnar encodings: run-length and dictionary.
//!
//! §3.3 notes that "reordering within a tile improves compression in
//! systems that support run-length encoding": clustering tuples by
//! structure produces long runs in low-cardinality columns. These codecs
//! make that claim measurable (see the `reordering` bench group) and give
//! the storage experiments an RLE point next to LZ4.

/// Run-length encode fixed-width records: each run becomes
/// `[u32 run length][record bytes]`. `input.len()` must be a multiple of
/// `width`.
pub fn rle_encode(input: &[u8], width: usize) -> Vec<u8> {
    assert!(width > 0, "width must be positive");
    assert_eq!(
        input.len() % width,
        0,
        "input not a whole number of records"
    );
    let mut out = Vec::with_capacity(input.len() / 4 + 16);
    let mut i = 0;
    while i < input.len() {
        let record = &input[i..i + width];
        let mut run = 1u32;
        let mut j = i + width;
        while j < input.len() && &input[j..j + width] == record {
            run += 1;
            j += width;
        }
        out.extend_from_slice(&run.to_le_bytes());
        out.extend_from_slice(record);
        i = j;
    }
    out
}

/// Inverse of [`rle_encode`].
pub fn rle_decode(input: &[u8], width: usize) -> Vec<u8> {
    assert!(width > 0, "width must be positive");
    let mut out = Vec::new();
    let mut i = 0;
    while i < input.len() {
        let run = u32::from_le_bytes(input[i..i + 4].try_into().expect("run length"));
        let record = &input[i + 4..i + 4 + width];
        for _ in 0..run {
            out.extend_from_slice(record);
        }
        i += 4 + width;
    }
    out
}

/// Dictionary-encode a string column: returns `(dictionary, codes)` where
/// `codes[i]` indexes into `dictionary`. Codes preserve input order, so
/// they can be RLE'd afterwards — the classic dictionary+RLE stack.
pub fn dict_encode<'a>(values: impl Iterator<Item = &'a str>) -> (Vec<String>, Vec<u32>) {
    let mut dict: Vec<String> = Vec::new();
    let mut index: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    let mut codes = Vec::new();
    for v in values {
        let code = match index.get(v) {
            Some(&c) => c,
            None => {
                let c = dict.len() as u32;
                dict.push(v.to_owned());
                index.insert(v.to_owned(), c);
                c
            }
        };
        codes.push(code);
    }
    (dict, codes)
}

/// Encoded byte size of a dictionary+RLE representation of a string
/// column: dictionary bytes plus RLE'd u32 codes. Used by the reordering
/// compression ablation.
pub fn dict_rle_size<'a>(values: impl Iterator<Item = &'a str>) -> usize {
    let (dict, codes) = dict_encode(values);
    let dict_bytes: usize = dict.iter().map(|s| s.len() + 4).sum();
    let code_bytes: Vec<u8> = codes.iter().flat_map(|c| c.to_le_bytes()).collect();
    dict_bytes + rle_encode(&code_bytes, 4).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_round_trip() {
        let data: Vec<u8> = [1u64, 1, 1, 2, 2, 3, 3, 3, 3]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let enc = rle_encode(&data, 8);
        assert_eq!(rle_decode(&enc, 8), data);
        // 3 runs × (4 + 8) = 36 < 72 raw.
        assert_eq!(enc.len(), 36);
    }

    #[test]
    fn rle_no_runs_overhead_bounded() {
        let data: Vec<u8> = (0u64..64).flat_map(|v| v.to_le_bytes()).collect();
        let enc = rle_encode(&data, 8);
        assert_eq!(rle_decode(&enc, 8), data);
        assert_eq!(enc.len(), 64 * 12, "worst case: +4 bytes per record");
    }

    #[test]
    fn rle_empty() {
        assert!(rle_encode(&[], 8).is_empty());
        assert!(rle_decode(&[], 8).is_empty());
    }

    #[test]
    fn rle_single_giant_run() {
        let data = vec![7u8; 4096];
        let enc = rle_encode(&data, 1);
        assert_eq!(enc.len(), 5);
        assert_eq!(rle_decode(&enc, 1), data);
    }

    #[test]
    fn dict_encoding() {
        let values = ["story", "comment", "story", "story", "poll"];
        let (dict, codes) = dict_encode(values.iter().copied());
        assert_eq!(dict, vec!["story", "comment", "poll"]);
        assert_eq!(codes, vec![0, 1, 0, 0, 2]);
    }

    #[test]
    fn clustering_improves_dict_rle() {
        // Interleaved vs clustered: identical multisets, very different
        // run-length behaviour — the §3.3 claim in miniature.
        let interleaved: Vec<&str> = (0..400)
            .map(|i| {
                if i % 4 == 0 {
                    "a"
                } else if i % 4 == 1 {
                    "b"
                } else if i % 4 == 2 {
                    "c"
                } else {
                    "d"
                }
            })
            .collect();
        let mut clustered = interleaved.clone();
        clustered.sort();
        let inter = dict_rle_size(interleaved.iter().copied());
        let clust = dict_rle_size(clustered.iter().copied());
        assert!(
            clust * 10 < inter,
            "clustered {clust} must be far smaller than interleaved {inter}"
        );
    }
}
