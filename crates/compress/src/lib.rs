//! # jt-compress — LZ4 block-format codec
//!
//! Table 6 of the paper reports that LZ4-compressing the columnar tile data
//! shrinks it a further 2–3×. No LZ4 crate is in our allowed dependency set,
//! so this is a from-scratch implementation of the LZ4 *block* format
//! (token / literals / 16-bit offset / match-length sequences) with a greedy
//! hash-chain compressor. The encoder follows the format's end-of-block
//! rules (final sequence is literals-only, no matches begin in the last 12
//! bytes), so output is decodable by any conforming LZ4 decoder.
//!
//! ```
//! let data = b"abcabcabcabcabcabc-the-end".repeat(10);
//! let packed = jt_compress::compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(jt_compress::decompress(&packed, data.len()).unwrap(), data);
//! ```

pub mod encodings;

use std::fmt;

/// Errors from [`decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// Input ended inside a sequence.
    Truncated,
    /// A match referenced bytes before the start of the output.
    BadOffset,
    /// Output did not match the expected decompressed size.
    SizeMismatch,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed input truncated"),
            DecompressError::BadOffset => write!(f, "match offset out of range"),
            DecompressError::SizeMismatch => write!(f, "decompressed size mismatch"),
        }
    }
}

impl std::error::Error for DecompressError {}

const MIN_MATCH: usize = 4;
/// No match may begin within the final 12 bytes (LZ4 block spec).
const END_GUARD: usize = 12;
/// Hash table size for the greedy matcher (64Ki entries).
const HASH_BITS: u32 = 16;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` into a fresh LZ4 block.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    compress_into(input, &mut out);
    out
}

/// Compress `input`, appending the block to `out`.
pub fn compress_into(input: &[u8], out: &mut Vec<u8>) {
    let n = input.len();
    // Too short for any legal match: emit one literal run.
    if n <= MIN_MATCH + END_GUARD {
        emit_sequence(out, input, 0, 0);
        return;
    }
    let mut table = vec![u32::MAX; 1 << HASH_BITS];
    let mut anchor = 0usize; // start of pending literals
    let mut pos = 0usize;
    let match_limit = n - END_GUARD;
    while pos < match_limit {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos as u32;
        let cand = candidate as usize;
        if candidate != u32::MAX
            && pos - cand <= u16::MAX as usize
            && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match forward (staying clear of the end guard).
            let max_len = n - 5 - pos; // last 5 bytes must stay literals
            let mut len = MIN_MATCH;
            while len < max_len && input[cand + len] == input[pos + len] {
                len += 1;
            }
            emit_sequence(out, &input[anchor..pos], (pos - cand) as u16, len);
            pos += len;
            anchor = pos;
        } else {
            pos += 1;
        }
    }
    // Trailing literals.
    emit_sequence(out, &input[anchor..], 0, 0);
}

/// Emit one sequence: literals, then (if `match_len > 0`) an offset and
/// match length. `match_len == 0` encodes the final literals-only sequence.
fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    let lit_len = literals.len();
    let lit_token = lit_len.min(15) as u8;
    let match_token = if match_len > 0 {
        (match_len - MIN_MATCH).min(15) as u8
    } else {
        0
    };
    out.push((lit_token << 4) | match_token);
    if lit_len >= 15 {
        emit_len(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        out.extend_from_slice(&offset.to_le_bytes());
        if match_len - MIN_MATCH >= 15 {
            emit_len(out, match_len - MIN_MATCH - 15);
        }
    }
}

#[inline]
fn emit_len(out: &mut Vec<u8>, mut rest: usize) {
    while rest >= 255 {
        out.push(255);
        rest -= 255;
    }
    out.push(rest as u8);
}

/// Decompress a block produced by [`compress`] into exactly
/// `decompressed_size` bytes.
pub fn decompress(input: &[u8], decompressed_size: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(decompressed_size);
    let mut pos = 0usize;
    loop {
        let token = *input.get(pos).ok_or(DecompressError::Truncated)?;
        pos += 1;
        // Literals.
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_len(input, &mut pos)?;
        }
        let lit_end = pos.checked_add(lit_len).ok_or(DecompressError::Truncated)?;
        if lit_end > input.len() {
            return Err(DecompressError::Truncated);
        }
        out.extend_from_slice(&input[pos..lit_end]);
        pos = lit_end;
        if pos == input.len() {
            // Final literals-only sequence.
            break;
        }
        // Match.
        if pos + 2 > input.len() {
            return Err(DecompressError::Truncated);
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += read_len(input, &mut pos)?;
        }
        match_len += MIN_MATCH;
        if offset == 0 || offset > out.len() {
            return Err(DecompressError::BadOffset);
        }
        // Overlapping copy (offset may be < match_len): byte-wise is the
        // defined semantics.
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
    if out.len() != decompressed_size {
        return Err(DecompressError::SizeMismatch);
    }
    Ok(out)
}

#[inline]
fn read_len(input: &[u8], pos: &mut usize) -> Result<usize, DecompressError> {
    let mut total = 0usize;
    loop {
        let b = *input.get(*pos).ok_or(DecompressError::Truncated)?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

/// Compress with the decompressed size prepended as a little-endian u32.
pub fn compress_prepend_size(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 20);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    compress_into(input, &mut out);
    out
}

/// Inverse of [`compress_prepend_size`].
pub fn decompress_size_prepended(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if input.len() < 4 {
        return Err(DecompressError::Truncated);
    }
    let size = u32::from_le_bytes(input[..4].try_into().expect("4 bytes")) as usize;
    decompress(&input[4..], size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("decompress");
        assert_eq!(back, data);
        packed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abcdefgh");
        round_trip(b"0123456789abcdef");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = b"json tiles ".repeat(500);
        let size = round_trip(&data);
        assert!(size < data.len() / 5, "only {} of {}", size, data.len());
    }

    #[test]
    fn run_of_single_byte() {
        let data = vec![0x42u8; 10_000];
        let size = round_trip(&data);
        assert!(size < 100, "run-length-like case: {size}");
    }

    #[test]
    fn incompressible_data_survives() {
        // Pseudo-random bytes: no matches, pure literals.
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect();
        let size = round_trip(&data);
        assert!(size >= data.len(), "incompressible data grows slightly");
        assert!(size < data.len() + 64);
    }

    #[test]
    fn overlapping_match_semantics() {
        // "aaaa..." forces matches with offset 1 < match length.
        let data = b"a".repeat(1000);
        round_trip(&data);
        let data = b"ab".repeat(1000);
        round_trip(&data);
    }

    #[test]
    fn long_literal_and_match_length_extensions() {
        // >15 literals then a long match then >15 literals.
        let mut data = Vec::new();
        data.extend((0..300u32).flat_map(|i| i.to_le_bytes()));
        data.extend(std::iter::repeat_n(7u8, 5000));
        data.extend((0..300u32).flat_map(|i| (i ^ 0xFFFF).to_le_bytes()));
        round_trip(&data);
    }

    #[test]
    fn size_prepended_round_trip() {
        let data = b"hello hello hello".repeat(10);
        let packed = compress_prepend_size(&data);
        assert_eq!(decompress_size_prepended(&packed).unwrap(), data);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let data = b"compressible compressible compressible".repeat(10);
        let packed = compress(&data);
        assert_eq!(decompress(&[], 10), Err(DecompressError::Truncated));
        assert_eq!(
            decompress(&packed[..packed.len() / 2], data.len()).unwrap_err(),
            DecompressError::Truncated
        );
        assert_eq!(
            decompress(&packed, data.len() + 1),
            Err(DecompressError::SizeMismatch)
        );
        // Bad offset: token promising a match at output position 0.
        let bogus = [0x04u8, b'x', b'y', b'z', b'w', 0xFF, 0xFF, 0x00];
        assert!(matches!(
            decompress(&bogus, 100),
            Err(DecompressError::BadOffset)
                | Err(DecompressError::Truncated)
                | Err(DecompressError::SizeMismatch)
        ));
        assert_eq!(
            decompress_size_prepended(&[1, 2]),
            Err(DecompressError::Truncated)
        );
    }

    #[test]
    fn json_like_payload() {
        let rows: Vec<String> = (0..500)
            .map(|i| format!(r#"{{"id":{i},"name":"user{i}","active":true}}"#))
            .collect();
        let data = rows.join("\n").into_bytes();
        let size = round_trip(&data);
        assert!(size < data.len() / 2, "JSON compresses at least 2x: {size}");
    }

    #[test]
    fn matches_never_cross_end_guard() {
        // Data whose only matches are near the end: must stay literals.
        let mut data = b"0123456789".to_vec();
        data.extend_from_slice(b"ABCDEFG");
        data.extend_from_slice(b"ABCDEFG");
        round_trip(&data);
    }
}
